file(REMOVE_RECURSE
  "CMakeFiles/bench_accel.dir/bench_accel.cc.o"
  "CMakeFiles/bench_accel.dir/bench_accel.cc.o.d"
  "bench_accel"
  "bench_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
