# Empty dependencies file for bench_fig1_report_rates.
# This may be replaced when dependencies are built.
