file(REMOVE_RECURSE
  "CMakeFiles/bench_sdc_algos.dir/bench_sdc_algos.cc.o"
  "CMakeFiles/bench_sdc_algos.dir/bench_sdc_algos.cc.o.d"
  "bench_sdc_algos"
  "bench_sdc_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdc_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
