# Empty compiler generated dependencies file for bench_sdc_algos.
# This may be replaced when dependencies are built.
