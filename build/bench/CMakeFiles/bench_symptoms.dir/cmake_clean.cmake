file(REMOVE_RECURSE
  "CMakeFiles/bench_symptoms.dir/bench_symptoms.cc.o"
  "CMakeFiles/bench_symptoms.dir/bench_symptoms.cc.o.d"
  "bench_symptoms"
  "bench_symptoms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symptoms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
