# Empty dependencies file for bench_symptoms.
# This may be replaced when dependencies are built.
