file(REMOVE_RECURSE
  "CMakeFiles/erasure_test.dir/erasure_test.cc.o"
  "CMakeFiles/erasure_test.dir/erasure_test.cc.o.d"
  "erasure_test"
  "erasure_test.pdb"
  "erasure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
