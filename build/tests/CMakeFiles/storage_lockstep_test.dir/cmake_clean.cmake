file(REMOVE_RECURSE
  "CMakeFiles/storage_lockstep_test.dir/storage_lockstep_test.cc.o"
  "CMakeFiles/storage_lockstep_test.dir/storage_lockstep_test.cc.o.d"
  "storage_lockstep_test"
  "storage_lockstep_test.pdb"
  "storage_lockstep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_lockstep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
