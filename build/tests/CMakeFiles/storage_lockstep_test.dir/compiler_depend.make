# Empty compiler generated dependencies file for storage_lockstep_test.
# This may be replaced when dependencies are built.
