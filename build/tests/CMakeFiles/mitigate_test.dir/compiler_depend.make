# Empty compiler generated dependencies file for mitigate_test.
# This may be replaced when dependencies are built.
