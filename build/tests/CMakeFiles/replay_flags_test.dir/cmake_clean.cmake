file(REMOVE_RECURSE
  "CMakeFiles/replay_flags_test.dir/replay_flags_test.cc.o"
  "CMakeFiles/replay_flags_test.dir/replay_flags_test.cc.o.d"
  "replay_flags_test"
  "replay_flags_test.pdb"
  "replay_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
