# Empty dependencies file for replay_flags_test.
# This may be replaced when dependencies are built.
