// mercurialctl — command-line driver for the mercurial CEE study platform.
//
// Subcommands:
//   study        run a full fleet lifecycle study and print the report
//   trace        run a study with the incident flight recorder on and print the timeline
//   recover      inspect a journal file, rebuild the study it came from, verify the prefix
//   interrogate  plant a catalog defect on one core and extract a confession
//   screen       run the directed stress battery on a healthy or defective core
//   defects      list the defect catalog
//
// Examples:
//   mercurialctl study --machines=1000 --days=365 --multiplier=25
//   mercurialctl study --machines=200 --days=180 --trace --trace-core=42
//   mercurialctl study --days=180 --journal=study.journal --chaos-controller-crash-every=7
//   mercurialctl recover --journal=study.journal
//   mercurialctl trace --machines=200 --days=180 --audit --jsonl=trace.jsonl
//   mercurialctl interrogate --defect=self_inverting_aes --iterations=1024
//   mercurialctl screen --defect=copy_stuck_bit --sweep=true

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/wire.h"
#include "src/core/fleet_study.h"
#include "src/core/tradeoff.h"
#include "src/detect/confession.h"
#include "src/detect/quorum.h"
#include "src/durability/journal.h"
#include "src/mitigate/blast_radius.h"
#include "src/sim/defect_catalog.h"
#include "src/telemetry/trace.h"
#include "src/workload/stress.h"

using namespace mercurial;

namespace {

int CmdDefects() {
  std::printf("defect catalog (src/sim/defect_catalog.h):\n");
  for (DefectClass klass : AllDefectClasses()) {
    std::printf("  %s\n", DefectClassName(klass));
  }
  return 0;
}

StatusOr<DefectClass> FindDefectClass(const std::string& name) {
  for (DefectClass klass : AllDefectClasses()) {
    if (name == DefectClassName(klass)) {
      return klass;
    }
  }
  return NotFoundError("unknown defect class '" + name + "' (see `mercurialctl defects`)");
}

// --- incident timeline printing ---------------------------------------------------------------

void PrintTraceEvent(const TraceEvent& event) {
  std::printf("    day %8.3f  epoch %-4llu %-24s %-22s detail=%llu",
              static_cast<double>(event.time_seconds) / 86400.0,
              static_cast<unsigned long long>(event.epoch), TraceEventKindName(event.kind),
              TraceCauseName(event.cause), static_cast<unsigned long long>(event.detail));
  // Verdict annotations: quorum events pack the vote breakdown into detail; probation-end
  // events carry the clean windows served, with the cause naming the outcome.
  if (event.kind == TraceEventKind::kQuorumVerdict) {
    const QuorumVerdict verdict = UnpackQuorumDetail(event.detail);
    std::printf("  [votes %d-%d%s%s -> %s]", verdict.votes_for, verdict.votes_against,
                verdict.escalations > 0 ? ", escalated" : "",
                verdict.fell_back ? ", fell back to tester" : "",
                verdict.confessed ? "confessed" : "clean");
  } else if (event.kind == TraceEventKind::kProbationEnd) {
    const char* outcome = event.cause == TraceCause::kReinstated ? "reinstated" : "retired";
    std::printf("  [%llu clean window(s) -> %s]",
                static_cast<unsigned long long>(event.detail), outcome);
  } else if (event.kind == TraceEventKind::kProbationStart) {
    std::printf("  [%llu restricted unit(s)]", static_cast<unsigned long long>(event.detail));
  }
  std::printf("\n");
}

// Prints the flight-recorder summary plus a per-core incident timeline: the full cause chain
// (first record through conviction) for every convicted core — or just `core_filter` — then
// any post-conviction events (repair passes, retries, sheds). When the blast-radius audit ran,
// each core is annotated with the artifacts the provenance ledger attributes to it.
void PrintIncidentTimelines(const IncidentTrace& trace, const BlastRadiusLedger* ledger,
                            int64_t core_filter) {
  const TraceCounters& counters = trace.counters;
  std::printf("flight recorder: %zu events resident (emitted %llu, dropped %llu, "
              "sampled out %llu, shards %u)\n",
              trace.events.size(), static_cast<unsigned long long>(counters.events_emitted),
              static_cast<unsigned long long>(counters.events_dropped),
              static_cast<unsigned long long>(counters.events_sampled_out), trace.shards);

  const TraceQuery query(trace);
  std::vector<uint64_t> cores = query.ConvictedCores();
  if (core_filter >= 0) {
    cores.assign(1, static_cast<uint64_t>(core_filter));
  }
  if (cores.empty()) {
    std::printf("no convictions recorded — nothing to reconstruct\n");
    return;
  }
  std::printf("convicted cores: %zu\n", query.ConvictedCores().size());
  for (const uint64_t core : cores) {
    const std::vector<TraceEvent> chain = query.CauseChain(core);
    const std::vector<TraceEvent> timeline = query.CoreTimeline(core);
    if (timeline.empty()) {
      std::printf("\ncore %llu: no recorded events\n", static_cast<unsigned long long>(core));
      continue;
    }
    std::printf("\ncore %llu — cause chain (%zu events to conviction, %zu total)",
                static_cast<unsigned long long>(core), chain.size(), timeline.size());
    if (ledger != nullptr) {
      std::printf(", blast radius %llu artifacts / %llu corrupt",
                  static_cast<unsigned long long>(ledger->ArtifactsForCore(core)),
                  static_cast<unsigned long long>(ledger->CorruptForCore(core)));
    }
    std::printf(":\n");
    if (chain.empty()) {
      // Not convicted (possible with --trace-core / --core): show the raw timeline instead.
      for (const TraceEvent& event : timeline) {
        PrintTraceEvent(event);
      }
      continue;
    }
    for (const TraceEvent& event : chain) {
      PrintTraceEvent(event);
    }
    // The cause chain is a prefix of the core's timeline; anything past it is post-conviction
    // activity (repair passes, retries, sheds).
    if (!chain.empty() && timeline.size() > chain.size()) {
      std::printf("  after conviction:\n");
      for (size_t i = chain.size(); i < timeline.size(); ++i) {
        PrintTraceEvent(timeline[i]);
      }
    }
  }
}

// Writes the JSONL / CSV export artifacts when the corresponding path flag is nonempty.
// Returns false (after printing to stderr) if a file cannot be opened.
bool ExportTraceArtifacts(const IncidentTrace& trace, const std::string& jsonl_path,
                          const std::string& csv_path) {
  for (const auto& [path, body] :
       {std::pair<std::string, std::string>{jsonl_path, jsonl_path.empty()
                                                            ? std::string()
                                                            : TraceToJsonl(trace)},
        std::pair<std::string, std::string>{csv_path,
                                            csv_path.empty() ? std::string()
                                                             : TraceToCsv(trace)}}) {
    if (path.empty()) {
      continue;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), body.size());
  }
  return true;
}

// Shared between `study` and `recover`: the full study flag surface. `recover` re-parses the
// argv recorded in the journal manifest through these same definitions, so the rebuilt study
// is flag-for-flag the invocation that wrote the journal.
void DefineStudyFlags(FlagSet& flags) {
  flags.DefineInt("machines", 500, "fleet size in machines");
  flags.DefineInt("days", 365, "simulated study duration");
  flags.DefineInt("seed", 42, "master seed (fixes the whole study)");
  flags.DefineDouble("multiplier", 25.0, "mercurial-core rate multiplier over product rates");
  flags.DefineInt("work-units", 20, "work units per busy core-day");
  flags.DefineInt("screening-period", 45, "offline screening cadence in days (0 = disabled)");
  flags.DefineBool("screen-adaptive", false,
                   "risk-adaptive offline screening: score due cores (report evidence, "
                   "screen-fail recidivism, probation, age, operating-point stress, coverage "
                   "gaps) and spend the ops budget riskiest-first");
  flags.DefineInt("screen-budget-ops-per-day", 0,
                  "adaptive screening budget in battery micro-ops per day (0 = unmetered)");
  flags.DefineDouble("screen-risk-min-period-days", 10.0,
                     "adaptive cadence floor for the riskiest cores");
  flags.DefineDouble("screen-risk-max-period-days", 60.0,
                     "adaptive cadence ceiling for pristine cores");
  flags.DefineDouble("screen-risk-warm", 1.0,
                     "risk at or above this doubles the battery depth");
  flags.DefineDouble("screen-risk-hot", 3.0,
                     "risk at or above this quadruples the battery depth");
  flags.DefineBool("burn-in", false, "screen every core once before production");
  flags.DefineInt("threads", 1, "worker threads for the sharded parallel engine");
  flags.DefineInt("shards", 0,
                  "random-stream shards (0 = auto: 1 when --threads=1, else 8x threads); "
                  "part of the experiment identity — results depend on shards, never threads");
  flags.DefineBool("sparse-engine", true,
                   "due-wheel sparse tick engine (O(active work) per tick); disable to run "
                   "the dense reference oracle — results are bit-identical either way");
  flags.DefineBool("fig1", false, "also print the weekly incident-rate series as CSV");
  flags.DefineInt("quarantine-queue", 0,
                  "max suspects resident in the quarantine pipeline (0 = unbounded)");
  flags.DefineInt("quarantine-retries", 0,
                  "extra interrogation attempts for non-confessing suspects");
  flags.DefineDouble("quarantine-backoff-days", 2.0, "base retry backoff in days");
  flags.DefineDouble("quarantine-budget", 1.0,
                     "max fraction of cores draining+quarantined at once (1.0 = no guardrail)");
  flags.DefineDouble("chaos-drop", 0.0, "P(suspect report lost in flight)");
  flags.DefineDouble("chaos-dup", 0.0, "P(suspect report delivered twice)");
  flags.DefineDouble("chaos-delay", 0.0, "P(suspect report delivered late)");
  flags.DefineDouble("chaos-delay-days", 2.0, "mean delivery delay for delayed reports");
  flags.DefineDouble("chaos-abort", 0.0, "P(interrogation battery preempted mid-run)");
  flags.DefineDouble("chaos-restarts", 0.0,
                     "machine crash-restart rate per machine-day (resets in-flight quarantines)");
  flags.DefineBool("quorum", false,
                   "judge each interrogation battery by a quorum of witness cores");
  flags.DefineInt("quorum-witnesses", 3, "initial quorum size");
  flags.DefineInt("quorum-max-escalations", 2,
                  "wider quorums (2W+1) convened after split votes before falling back");
  flags.DefineDouble("quorum-witness-error", 0.25,
                     "P(a mercurial witness with an active defect misreads the battery)");
  flags.DefineDouble("quorum-strong-agreement", 1.0,
                     "agreement below this marks the conviction's evidence weak (1.0 = only "
                     "unanimity is strong)");
  flags.DefineBool("probation", false,
                   "weak-evidence convictions enter restricted service + shadow screening "
                   "instead of terminal retirement");
  flags.DefineDouble("probation-window-days", 7.0, "shadow-screen cadence in days");
  flags.DefineInt("probation-clean-windows", 3, "clean windows before reinstatement");
  flags.DefineInt("probation-weak-attempts", 0,
                  "confessions needing more interrogation attempts than this are weak "
                  "evidence (0 = off)");
  flags.DefineDouble("chaos-lying-witness", 0.0,
                     "P(a cast witness vote — or the lone tester's verdict — is flipped)");
  flags.DefineDouble("chaos-witness-crash", 0.0, "P(a witness crashes mid-vote, casting none)");
  flags.DefineDouble("chaos-probation-suppress", 0.0,
                     "P(a probation shadow-screen confession is swallowed in flight)");
  flags.DefineBool("audit", false,
                   "blast-radius auditing + retroactive repair after conviction");
  flags.DefineInt("audit-repair-budget", 4096,
                  "max artifacts re-verified/re-executed per tick");
  flags.DefineInt("audit-retries", 3, "repair passes per suspect epoch before abandoning");
  flags.DefineDouble("audit-backoff-days", 1.0, "base repair retry backoff in days");
  flags.DefineDouble("audit-lookback-days", 180.0,
                     "max suspect window behind a conviction, in days");
  flags.DefineDouble("audit-onset-margin-days", 14.0,
                     "margin before the first signal in the defect-onset estimate, in days");
  flags.DefineInt("audit-backlog", 1 << 20,
                  "max queued suspect artifacts before lowest-risk epochs are shed");
  flags.DefineDouble("chaos-repair-fail", 0.0, "P(repair re-verification misses a corruption)");
  flags.DefineDouble("chaos-repair-defective", 0.0,
                     "P(repair pass forced onto a defective executor)");
  flags.DefineDouble("chaos-repair-partial", 0.0, "P(repair pass preempted mid-epoch)");
  flags.DefineBool("trace", false,
                   "record the incident flight recorder and print per-core timelines");
  flags.DefineInt("trace-ring-capacity", 1 << 16, "flight-recorder slots per shard ring");
  flags.DefineInt("trace-core", -1,
                  "print only this core's timeline (-1 = every convicted core)");
  flags.DefineString("trace-jsonl", "", "export the full trace as JSONL to this path");
  flags.DefineString("trace-csv", "", "export the full trace as CSV to this path");
  flags.DefineBool("durable", false,
                   "arm the write-ahead journal + snapshots for the controller state "
                   "(in memory; --journal adds a write-through file)");
  flags.DefineString("journal", "",
                     "write-through journal file (implies --durable); replay it with "
                     "`mercurialctl recover --journal=PATH`");
  flags.DefineInt("snapshot-every", 64,
                  "ticks between full journal snapshots (0 = initial snapshot only)");
  flags.DefineInt("chaos-controller-crash-every", 0,
                  "kill + recover the controller from the journal every K ticks "
                  "(0 = off; implies --durable)");
  flags.DefineDouble("chaos-controller-crash", 0.0,
                     "controller crash rate per day, at chaos-chosen ticks (implies --durable)");
  flags.DefineDouble("chaos-journal-torn-tail", 0.0,
                     "P(a controller crash also tears bytes off the journal tail)");
  flags.DefineDouble("chaos-journal-bit-flip", 0.0,
                     "P(a controller crash also flips one bit in the journal tail)");
}

// Builds and validates StudyOptions from a parsed study flag set.
Status BuildStudyOptions(const FlagSet& flags, StudyOptions* out) {
  StudyOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.fleet.machine_count = static_cast<size_t>(flags.GetInt("machines"));
  options.fleet.mercurial_rate_multiplier = flags.GetDouble("multiplier");
  options.duration = SimTime::Days(flags.GetInt("days"));
  options.work_units_per_core_day = static_cast<uint64_t>(flags.GetInt("work-units"));
  options.workload.payload_bytes = 256;
  options.burn_in = flags.GetBool("burn-in");
  options.threads = static_cast<int>(flags.GetInt("threads"));
  options.shards = static_cast<int>(flags.GetInt("shards"));
  options.sparse_engine = flags.GetBool("sparse-engine");
  if (options.shards <= 0) {
    // Auto: serial legacy engine for one thread; otherwise 8 shards per thread so the
    // dynamic scheduler can balance unevenly-loaded shards.
    options.shards = options.threads <= 1 ? 1 : 8 * options.threads;
  }
  const int64_t period = flags.GetInt("screening-period");
  options.screening.offline_enabled = period > 0;
  if (period > 0) {
    options.screening.offline_period = SimTime::Days(period);
  }
  options.screening.adaptive = flags.GetBool("screen-adaptive");
  options.screening.budget_ops_per_day =
      static_cast<uint64_t>(flags.GetInt("screen-budget-ops-per-day"));
  options.screening.adaptive_min_period = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("screen-risk-min-period-days") * 86400.0));
  options.screening.adaptive_max_period = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("screen-risk-max-period-days") * 86400.0));
  options.screening.risk_warm = flags.GetDouble("screen-risk-warm");
  options.screening.risk_hot = flags.GetDouble("screen-risk-hot");
  if (Status bad_screening = ValidateScreeningOptions(options.screening); !bad_screening.ok()) {
    return bad_screening;
  }
  options.control_plane.max_pending = static_cast<size_t>(flags.GetInt("quarantine-queue"));
  options.control_plane.max_retries = static_cast<int>(flags.GetInt("quarantine-retries"));
  options.control_plane.retry_backoff = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("quarantine-backoff-days") * 86400.0));
  options.control_plane.quarantine_budget_fraction = flags.GetDouble("quarantine-budget");
  options.control_plane.chaos.drop_report = flags.GetDouble("chaos-drop");
  options.control_plane.chaos.duplicate_report = flags.GetDouble("chaos-dup");
  options.control_plane.chaos.delay_report = flags.GetDouble("chaos-delay");
  options.control_plane.chaos.report_delay_mean = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("chaos-delay-days") * 86400.0));
  options.control_plane.chaos.abort_interrogation = flags.GetDouble("chaos-abort");
  options.control_plane.chaos.machine_restart_per_day = flags.GetDouble("chaos-restarts");
  options.control_plane.quorum.enabled = flags.GetBool("quorum");
  options.control_plane.quorum.witnesses = static_cast<int>(flags.GetInt("quorum-witnesses"));
  options.control_plane.quorum.max_escalations =
      static_cast<int>(flags.GetInt("quorum-max-escalations"));
  options.control_plane.quorum.witness_error_rate = flags.GetDouble("quorum-witness-error");
  options.control_plane.quorum.strong_agreement = flags.GetDouble("quorum-strong-agreement");
  options.control_plane.probation.enabled = flags.GetBool("probation");
  options.control_plane.probation.window = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("probation-window-days") * 86400.0));
  options.control_plane.probation.clean_windows_to_reinstate =
      static_cast<int>(flags.GetInt("probation-clean-windows"));
  options.control_plane.probation.weak_after_attempts =
      static_cast<int>(flags.GetInt("probation-weak-attempts"));
  options.control_plane.chaos.lying_witness = flags.GetDouble("chaos-lying-witness");
  options.control_plane.chaos.witness_crash = flags.GetDouble("chaos-witness-crash");
  options.control_plane.chaos.probation_suppress = flags.GetDouble("chaos-probation-suppress");
  options.audit.enabled = flags.GetBool("audit");
  options.audit.repair_budget_per_tick =
      static_cast<uint64_t>(flags.GetInt("audit-repair-budget"));
  options.audit.max_attempts = static_cast<int>(flags.GetInt("audit-retries"));
  options.audit.retry_backoff = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("audit-backoff-days") * 86400.0));
  options.audit.max_lookback = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("audit-lookback-days") * 86400.0));
  options.audit.onset_margin = SimTime::Seconds(
      static_cast<int64_t>(flags.GetDouble("audit-onset-margin-days") * 86400.0));
  options.audit.max_backlog_artifacts = static_cast<uint64_t>(flags.GetInt("audit-backlog"));
  options.audit.chaos.repair_fail_reverify = flags.GetDouble("chaos-repair-fail");
  options.audit.chaos.repair_on_defective = flags.GetDouble("chaos-repair-defective");
  options.audit.chaos.repair_partial = flags.GetDouble("chaos-repair-partial");
  options.trace.enabled = flags.GetBool("trace");
  options.trace.ring_capacity = static_cast<size_t>(flags.GetInt("trace-ring-capacity"));
  options.control_plane.chaos.controller_crash_per_day =
      flags.GetDouble("chaos-controller-crash");
  options.control_plane.chaos.controller_crash_every_ticks =
      static_cast<int>(flags.GetInt("chaos-controller-crash-every"));
  options.control_plane.chaos.journal_torn_tail = flags.GetDouble("chaos-journal-torn-tail");
  options.control_plane.chaos.journal_bit_flip = flags.GetDouble("chaos-journal-bit-flip");
  if (flags.GetInt("snapshot-every") < 0) {
    return InvalidArgumentError("--snapshot-every must be >= 0");
  }
  options.durability.snapshot_every = static_cast<uint64_t>(flags.GetInt("snapshot-every"));
  options.durability.journal_path = flags.GetString("journal");
  options.durability.enabled = flags.GetBool("durable") ||
                               !options.durability.journal_path.empty() ||
                               options.control_plane.chaos.controller_enabled();
  if (Status invalid = options.control_plane.Validate(); !invalid.ok()) {
    return invalid;
  }
  if (Status bad_audit = options.audit.Validate(); !bad_audit.ok()) {
    return bad_audit;
  }
  if (Status bad_trace = options.trace.Validate(); !bad_trace.ok()) {
    return bad_trace;
  }
  *out = std::move(options);
  return Status::Ok();
}

// The journal manifest is the study's own argv — [u32 count][u32 len + bytes]* — enough for
// `recover` to rebuild and deterministically re-run the exact invocation that wrote it.
std::vector<uint8_t> EncodeArgvManifest(int argc, const char* const* argv) {
  std::vector<uint8_t> bytes;
  ByteWriter w(bytes);
  w.PutU32(static_cast<uint32_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const size_t len = std::strlen(argv[i]);
    w.PutU32(static_cast<uint32_t>(len));
    bytes.insert(bytes.end(), argv[i], argv[i] + len);
  }
  return bytes;
}

Status DecodeArgvManifest(const std::vector<uint8_t>& bytes, std::vector<std::string>* out) {
  ByteReader r(bytes.data(), bytes.size());
  uint32_t count = 0;
  if (Status s = r.GetU32(&count); !s.ok()) {
    return s;
  }
  out->clear();
  size_t offset = 4;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (Status s = r.GetU32(&len); !s.ok()) {
      return s;
    }
    offset += 4;
    if (len > r.remaining()) {
      return DataLossError("manifest argv entry exceeds the payload");
    }
    out->emplace_back(reinterpret_cast<const char*>(bytes.data() + offset), len);
    for (uint32_t skipped = 0; skipped < len; ++skipped) {
      uint8_t byte = 0;
      if (Status s = r.GetU8(&byte); !s.ok()) {
        return s;
      }
    }
    offset += len;
  }
  return r.ExpectEnd();
}

void PrintDurabilitySection(const DurabilityStats& d) {
  std::printf("\ndurability (write-ahead journal):\n");
  std::printf("  journal                %llu frames / %llu bytes (%llu snapshots, "
              "%llu tick frames)\n",
              static_cast<unsigned long long>(d.frames_written),
              static_cast<unsigned long long>(d.bytes_written),
              static_cast<unsigned long long>(d.snapshots_written),
              static_cast<unsigned long long>(d.tick_frames_written));
  std::printf("  controller crashes     %llu -> %llu recoveries (%llu exact, %llu prefix)\n",
              static_cast<unsigned long long>(d.controller_crashes),
              static_cast<unsigned long long>(d.recoveries),
              static_cast<unsigned long long>(d.exact_recoveries),
              static_cast<unsigned long long>(d.prefix_recoveries));
  std::printf("  frames replayed/lost   %llu/%llu (torn tails %llu, corrupt frames %llu)\n",
              static_cast<unsigned long long>(d.frames_replayed),
              static_cast<unsigned long long>(d.frames_truncated),
              static_cast<unsigned long long>(d.torn_tail_truncations),
              static_cast<unsigned long long>(d.corrupt_frames_rejected));
  const uint64_t reconciled = d.reconcile_released_unknown + d.reconcile_reinstated_unknown +
                              d.reconcile_dropped_pending + d.reconcile_dropped_probation;
  if (reconciled > 0) {
    std::printf("  fleet reconciliation   released=%llu reinstated=%llu dropped "
                "pending=%llu probation=%llu\n",
                static_cast<unsigned long long>(d.reconcile_released_unknown),
                static_cast<unsigned long long>(d.reconcile_reinstated_unknown),
                static_cast<unsigned long long>(d.reconcile_dropped_pending),
                static_cast<unsigned long long>(d.reconcile_dropped_probation));
  }
}

int CmdStudy(int argc, const char* const* argv) {
  FlagSet flags;
  DefineStudyFlags(flags);
  const Status status = flags.Parse(argc, argv, 2);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }
  StudyOptions options;
  if (Status bad = BuildStudyOptions(flags, &options); !bad.ok()) {
    std::fprintf(stderr, "%s\n", bad.ToString().c_str());
    return 1;
  }
  if (options.durability.enabled) {
    options.durability.manifest = EncodeArgvManifest(argc, argv);
  }

  FleetStudy study(options);
  std::printf("fleet: %zu machines / %zu cores / %zu mercurial cores planted\n",
              study.fleet().machine_count(), study.fleet().core_count(),
              study.fleet().mercurial_cores().size());
  const StudyReport report = study.Run();

  std::printf("\nsymptoms over %llu work units:\n",
              static_cast<unsigned long long>(report.work_units_executed));
  for (int s = 1; s < kSymptomCount; ++s) {
    std::printf("  %-22s %llu\n", SymptomName(static_cast<Symptom>(s)),
                static_cast<unsigned long long>(report.symptom_counts[s]));
  }
  std::printf("\ndetection:\n");
  std::printf("  screen failures        %llu\n",
              static_cast<unsigned long long>(report.screen_failures));
  std::printf("  suspects processed     %llu\n",
              static_cast<unsigned long long>(report.quarantine.suspects_processed));
  std::printf("  retirements (TP/FP)    %llu (%llu/%llu)\n",
              static_cast<unsigned long long>(report.quarantine.retirements),
              static_cast<unsigned long long>(report.quarantine.true_positive_retirements),
              static_cast<unsigned long long>(report.quarantine.false_positive_retirements));
  std::printf("  mercurial caught       %llu of %zu\n",
              static_cast<unsigned long long>(report.mercurial_retired),
              report.true_mercurial_cores);
  std::printf("  detection latency p50  %.0f days\n",
              report.detection_latency_days.Quantile(0.5));
  std::printf("  silent corruptions     %llu\n",
              static_cast<unsigned long long>(report.silent_corruptions));

  if (options.screening.adaptive) {
    std::printf("\nrisk-adaptive screening:\n");
    std::printf("  screening ops          %llu (budget %llu/day, 0 = unmetered)\n",
                static_cast<unsigned long long>(report.screening_ops),
                static_cast<unsigned long long>(options.screening.budget_ops_per_day));
    std::printf("  screens by tier        cold=%llu warm=%llu hot=%llu\n",
                static_cast<unsigned long long>(report.scheduler.screen_drains_by_tier[0]),
                static_cast<unsigned long long>(report.scheduler.screen_drains_by_tier[1]),
                static_cast<unsigned long long>(report.scheduler.screen_drains_by_tier[2]));
    std::printf("  tier migration cost    %.0f/%.0f/%.0f core-seconds\n",
                report.scheduler.screen_migration_cost_by_tier[0],
                report.scheduler.screen_migration_cost_by_tier[1],
                report.scheduler.screen_migration_cost_by_tier[2]);
  }

  const ControlPlaneStats& plane = report.control_plane;
  if (plane.suspects_shed > 0 || plane.retries_scheduled > 0 || plane.drain_escalations > 0 ||
      plane.guardrail_activations > 0 || plane.restarts_reset > 0 ||
      options.control_plane.chaos.enabled()) {
    std::printf("\ncontrol plane:\n");
    std::printf("  admitted/shed          %llu/%llu (queue peak %llu)\n",
                static_cast<unsigned long long>(plane.suspects_admitted),
                static_cast<unsigned long long>(plane.suspects_shed),
                static_cast<unsigned long long>(plane.queue_peak));
    std::printf("  retries scheduled      %llu\n",
                static_cast<unsigned long long>(plane.retries_scheduled));
    std::printf("  drain escalations      %llu\n",
                static_cast<unsigned long long>(plane.drain_escalations));
    std::printf("  guardrail releases     %llu (activations %llu, screens deferred %llu)\n",
                static_cast<unsigned long long>(plane.guardrail_releases),
                static_cast<unsigned long long>(plane.guardrail_activations),
                static_cast<unsigned long long>(plane.screening_deferrals));
    std::printf("  stranded (pending)     %.0f core-days (peak %llu cores)\n",
                plane.pending_isolation_core_seconds / 86400.0,
                static_cast<unsigned long long>(plane.peak_pending_isolation));
    std::printf("  chaos                  drop=%llu dup=%llu delay=%llu abort=%llu restart=%llu "
                "(quarantines reset %llu)\n",
                static_cast<unsigned long long>(plane.chaos.reports_dropped),
                static_cast<unsigned long long>(plane.chaos.reports_duplicated),
                static_cast<unsigned long long>(plane.chaos.reports_delayed),
                static_cast<unsigned long long>(plane.chaos.interrogations_aborted),
                static_cast<unsigned long long>(plane.chaos.machine_restarts),
                static_cast<unsigned long long>(plane.restarts_reset));
  }

  if (options.control_plane.quorum.enabled || options.control_plane.probation.enabled) {
    std::printf("\nverdicts (quorum/probation):\n");
    if (options.control_plane.quorum.enabled) {
      const QuorumStats& quorum = plane.quorum;
      std::printf("  quorum judgments       %llu (%llu votes cast)\n",
                  static_cast<unsigned long long>(quorum.judgments),
                  static_cast<unsigned long long>(quorum.votes_cast));
      std::printf("  splits -> escalations  %llu -> %llu (fallbacks %llu)\n",
                  static_cast<unsigned long long>(quorum.splits),
                  static_cast<unsigned long long>(quorum.escalations),
                  static_cast<unsigned long long>(quorum.fallbacks));
      std::printf("  tester overridden      %llu\n",
                  static_cast<unsigned long long>(quorum.overrides));
    }
    if (options.control_plane.probation.enabled) {
      std::printf("  probation entries      %llu (escalated %llu, reinstated %llu, "
                  "open at end %llu)\n",
                  static_cast<unsigned long long>(report.quarantine.probation_entries),
                  static_cast<unsigned long long>(report.quarantine.probation_escalations),
                  static_cast<unsigned long long>(report.quarantine.reinstatements),
                  static_cast<unsigned long long>(plane.probation_pending_at_end));
      std::printf("  restricted work        %llu unit(s) declined; %.0f probation core-days\n",
                  static_cast<unsigned long long>(report.probation_work_declined),
                  report.scheduler.probation_core_seconds / 86400.0);
    }
    if (options.control_plane.chaos.verdict_enabled()) {
      std::printf("  verdict chaos          lied=%llu crashed=%llu suppressed=%llu\n",
                  static_cast<unsigned long long>(plane.chaos.witnesses_lied),
                  static_cast<unsigned long long>(plane.chaos.witnesses_crashed),
                  static_cast<unsigned long long>(plane.chaos.probation_signals_suppressed));
    }
  }

  if (report.audit_enabled) {
    const RepairStats& repair = report.repair;
    std::printf("\nblast-radius audit:\n");
    std::printf("  artifacts tagged       %llu (%llu corrupt at rest)\n",
                static_cast<unsigned long long>(report.artifacts_tagged),
                static_cast<unsigned long long>(report.corruptions_tagged));
    std::printf("  convictions -> suspects %llu -> %llu epochs / %llu artifacts\n",
                static_cast<unsigned long long>(repair.convictions),
                static_cast<unsigned long long>(repair.suspect_epochs),
                static_cast<unsigned long long>(repair.suspect_artifacts));
    std::printf("  reverified/reexecuted  %llu/%llu (backlog peak %llu)\n",
                static_cast<unsigned long long>(repair.artifacts_reverified),
                static_cast<unsigned long long>(repair.artifacts_reexecuted),
                static_cast<unsigned long long>(repair.backlog_peak));
    std::printf("  retries/abandoned/shed %llu/%llu/%llu epochs\n",
                static_cast<unsigned long long>(repair.retries_scheduled),
                static_cast<unsigned long long>(repair.tasks_abandoned),
                static_cast<unsigned long long>(repair.epochs_shed));
    std::printf("  corruption disposition repaired=%llu shed=%llu at-rest=%llu "
                "(missed=%llu abandoned=%llu)\n",
                static_cast<unsigned long long>(repair.corruptions_repaired),
                static_cast<unsigned long long>(repair.corruptions_shed),
                static_cast<unsigned long long>(repair.corruptions_still_at_rest),
                static_cast<unsigned long long>(repair.corruptions_missed),
                static_cast<unsigned long long>(repair.corruptions_abandoned));
    if (options.audit.chaos.repair_enabled()) {
      std::printf("  repair chaos           reverify-miss=%llu defective=%llu partial=%llu\n",
                  static_cast<unsigned long long>(repair.chaos.reverify_misses),
                  static_cast<unsigned long long>(repair.chaos.defective_repairs),
                  static_cast<unsigned long long>(repair.chaos.partial_repairs));
    }
    std::printf("  metrics (repair.*):\n");
    for (const auto& [name, value] : study.metrics().CountersWithPrefix("repair.")) {
      std::printf("    %-28s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
  }

  if (options.durability.enabled) {
    PrintDurabilitySection(report.durability);
    if (!options.durability.journal_path.empty()) {
      std::printf("  journal file           %s\n", options.durability.journal_path.c_str());
    }
  }

  const CostBreakdown bill = EvaluateStudyCost(report, CostModel{});
  std::printf("\ncost (default model): corruption=%.0f disruption=%.0f screening=%.1f "
              "capacity=%.0f total=%.0f\n",
              bill.corruption, bill.disruption, bill.screening, bill.capacity, bill.total());

  if (options.trace.enabled) {
    std::printf("\n");
    PrintIncidentTimelines(report.trace, report.audit_enabled ? &study.ledger() : nullptr,
                           flags.GetInt("trace-core"));
    if (!ExportTraceArtifacts(report.trace, flags.GetString("trace-jsonl"),
                              flags.GetString("trace-csv"))) {
      return 1;
    }
  }

  if (flags.GetBool("fig1")) {
    std::printf("\nweek,user_rate,auto_rate\n");
    for (size_t w = 0; w < report.weekly_user_rate.size(); ++w) {
      std::printf("%zu,%g,%g\n", w, report.weekly_user_rate[w], report.weekly_auto_rate[w]);
    }
  }
  return 0;
}

// `mercurialctl recover`: the journal's read side. Reads a journal file written by
// `study --journal=PATH`, validates its framing (every CRC), recovers the manifest argv,
// rebuilds the exact study invocation recorded there, deterministically re-runs it with an
// in-memory journal, and verifies the on-disk durable prefix byte-for-byte against the
// re-run. A torn or corrupt tail bounds the durable prefix; an image that proves no durable
// state at all is refused loudly with DATA_LOSS.
int CmdRecover(int argc, const char* const* argv) {
  FlagSet flags;
  flags.DefineString("journal", "", "journal file written by `mercurialctl study --journal`");
  flags.DefineBool("run", true,
                   "re-run the recovered invocation and verify the journal prefix against it");
  const Status status = flags.Parse(argc, argv, 2);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }
  const std::string path = flags.GetString("journal");
  if (path.empty()) {
    std::fprintf(stderr, "--journal is required\n");
    return 1;
  }

  std::vector<uint8_t> image;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::rewind(file);
    image.resize(size > 0 ? static_cast<size_t>(size) : 0);
    if (!image.empty() && std::fread(image.data(), 1, image.size(), file) != image.size()) {
      std::fprintf(stderr, "short read from %s\n", path.c_str());
      std::fclose(file);
      return 1;
    }
    std::fclose(file);
  }

  const StatusOr<JournalImageInfo> inspected = InspectJournalImage(image);
  if (!inspected.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), inspected.status().ToString().c_str());
    return 1;
  }
  const JournalImageInfo& info = *inspected;
  std::printf("journal %s: %zu bytes\n", path.c_str(), image.size());
  std::printf("  durable prefix         %zu bytes / %llu frames (%llu snapshots, "
              "%llu tick frames)\n",
              info.durable_prefix_bytes, static_cast<unsigned long long>(info.frames),
              static_cast<unsigned long long>(info.snapshots),
              static_cast<unsigned long long>(info.tick_frames));
  std::printf("  durable tick           %llu (latest snapshot at tick %llu)\n",
              static_cast<unsigned long long>(info.durable_tick),
              static_cast<unsigned long long>(info.snapshot_tick));
  if (info.durable_prefix_bytes < image.size()) {
    std::printf("  untrusted tail         %zu bytes rejected (%s)\n",
                image.size() - info.durable_prefix_bytes,
                info.corrupt_frame ? "corrupt frame" : "torn tail");
  }

  std::vector<std::string> manifest_argv;
  if (Status bad = DecodeArgvManifest(info.manifest, &manifest_argv); !bad.ok()) {
    std::fprintf(stderr, "manifest does not decode as an argv record: %s\n",
                 bad.ToString().c_str());
    return 1;
  }
  std::printf("  recovered invocation  ");
  for (const std::string& arg : manifest_argv) {
    std::printf(" %s", arg.c_str());
  }
  std::printf("\n");
  if (!flags.GetBool("run")) {
    return 0;
  }

  // Re-parse the recorded argv through the same flag surface `study` uses, then re-run with
  // an in-memory journal (never clobbering the image under verification) but the exact
  // manifest bytes — the re-run's journal is byte-for-byte the one the original run wrote.
  std::vector<const char*> raw;
  raw.reserve(manifest_argv.size());
  for (const std::string& arg : manifest_argv) {
    raw.push_back(arg.c_str());
  }
  FlagSet study_flags;
  DefineStudyFlags(study_flags);
  if (Status bad = study_flags.Parse(static_cast<int>(raw.size()), raw.data(), 2);
      !bad.ok()) {
    std::fprintf(stderr, "recovered invocation does not parse: %s\n", bad.ToString().c_str());
    return 1;
  }
  StudyOptions options;
  if (Status bad = BuildStudyOptions(study_flags, &options); !bad.ok()) {
    std::fprintf(stderr, "%s\n", bad.ToString().c_str());
    return 1;
  }
  options.durability.enabled = true;
  options.durability.journal_path.clear();
  options.durability.manifest = info.manifest;

  FleetStudy study(options);
  std::printf("\nre-running: %zu machines / %zu cores, seed %llu\n",
              study.fleet().machine_count(), study.fleet().core_count(),
              static_cast<unsigned long long>(options.seed));
  const StudyReport report = study.Run();
  PrintDurabilitySection(report.durability);

  const std::vector<uint8_t>& rerun = study.durability()->buffer();
  const bool prefix_matches =
      info.durable_prefix_bytes <= rerun.size() &&
      std::equal(image.begin(),
                 image.begin() + static_cast<std::ptrdiff_t>(info.durable_prefix_bytes),
                 rerun.begin());
  if (!prefix_matches) {
    size_t first_diff = 0;
    const size_t limit = std::min(info.durable_prefix_bytes, rerun.size());
    while (first_diff < limit && image[first_diff] == rerun[first_diff]) {
      ++first_diff;
    }
    std::fprintf(stderr,
                 "\njournal prefix verification FAILED: diverges from the re-run at byte %zu "
                 "of %zu — the image may predate a later journal truncation, or the recorded "
                 "flags no longer reproduce it\n",
                 first_diff, info.durable_prefix_bytes);
    return 2;
  }
  std::printf("\njournal prefix verified: %zu bytes bit-identical to the deterministic "
              "re-run%s\n",
              info.durable_prefix_bytes,
              info.durable_prefix_bytes == rerun.size() ? " (complete journal)" : "");
  std::printf("study replayed: %llu work units, %llu retirements (%llu mercurial), "
              "%llu controller crashes survived\n",
              static_cast<unsigned long long>(report.work_units_executed),
              static_cast<unsigned long long>(report.quarantine.retirements),
              static_cast<unsigned long long>(report.mercurial_retired),
              static_cast<unsigned long long>(report.durability.controller_crashes));
  return 0;
}

// `mercurialctl trace`: the forensic front door. Runs a study with the flight recorder on and
// prints only the incident reconstruction — per-core cause chains for every conviction — plus
// optional JSONL/CSV artifacts and a time-window slice. The full study report stays available
// via `mercurialctl study --trace`.
int CmdTrace(int argc, const char* const* argv) {
  FlagSet flags;
  flags.DefineInt("machines", 200, "fleet size in machines");
  flags.DefineInt("days", 180, "simulated study duration");
  flags.DefineInt("seed", 42, "master seed (fixes the whole study)");
  flags.DefineDouble("multiplier", 150.0, "mercurial-core rate multiplier over product rates");
  flags.DefineInt("threads", 1, "worker threads for the sharded parallel engine");
  flags.DefineInt("shards", 0, "random-stream shards (0 = auto, as in `study`)");
  flags.DefineBool("audit", false,
                   "blast-radius auditing: annotates timelines with artifact counts and "
                   "records repair events");
  flags.DefineInt("ring-capacity", 1 << 16, "flight-recorder slots per shard ring");
  flags.DefineInt("core", -1, "print only this core's timeline (-1 = every convicted core)");
  flags.DefineDouble("window-start-day", -1.0,
                     "with --window-end-day: also print every event in [start, end) days");
  flags.DefineDouble("window-end-day", -1.0, "end of the --window-start-day slice, exclusive");
  flags.DefineString("jsonl", "", "export the full trace as JSONL to this path");
  flags.DefineString("csv", "", "export the full trace as CSV to this path");
  const Status status = flags.Parse(argc, argv, 2);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  StudyOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.fleet.machine_count = static_cast<size_t>(flags.GetInt("machines"));
  options.fleet.mercurial_rate_multiplier = flags.GetDouble("multiplier");
  options.duration = SimTime::Days(flags.GetInt("days"));
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 256;
  options.screening.offline_period = SimTime::Days(30);
  options.threads = static_cast<int>(flags.GetInt("threads"));
  options.shards = static_cast<int>(flags.GetInt("shards"));
  if (options.shards <= 0) {
    options.shards = options.threads <= 1 ? 1 : 8 * options.threads;
  }
  options.audit.enabled = flags.GetBool("audit");
  options.trace.enabled = true;
  options.trace.ring_capacity = static_cast<size_t>(flags.GetInt("ring-capacity"));
  const Status bad_trace = options.trace.Validate();
  if (!bad_trace.ok()) {
    std::fprintf(stderr, "%s\n", bad_trace.ToString().c_str());
    return 1;
  }

  FleetStudy study(options);
  std::printf("fleet: %zu machines / %zu cores, %lld days, seed %llu\n",
              study.fleet().machine_count(), study.fleet().core_count(),
              static_cast<long long>(flags.GetInt("days")),
              static_cast<unsigned long long>(options.seed));
  const StudyReport report = study.Run();

  PrintIncidentTimelines(report.trace, options.audit.enabled ? &study.ledger() : nullptr,
                         flags.GetInt("core"));

  const double window_start = flags.GetDouble("window-start-day");
  const double window_end = flags.GetDouble("window-end-day");
  if (window_start >= 0.0 && window_end > window_start) {
    const TraceQuery query(report.trace);
    const std::vector<TraceEvent> slice =
        query.TimeWindow(SimTime::Seconds(static_cast<int64_t>(window_start * 86400.0)),
                         SimTime::Seconds(static_cast<int64_t>(window_end * 86400.0)));
    std::printf("\nwindow [day %.2f, day %.2f): %zu events\n", window_start, window_end,
                slice.size());
    for (const TraceEvent& event : slice) {
      std::printf("  core %-6llu", static_cast<unsigned long long>(event.core));
      PrintTraceEvent(event);
    }
  }

  return ExportTraceArtifacts(report.trace, flags.GetString("jsonl"), flags.GetString("csv"))
             ? 0
             : 1;
}

int CmdInterrogate(int argc, const char* const* argv) {
  FlagSet flags;
  flags.DefineString("defect", "vector_bit_flip", "defect class to plant (see `defects`)");
  flags.DefineInt("iterations", 1024, "stress iterations per unit per attempt");
  flags.DefineInt("attempts", 3, "interrogation attempts");
  flags.DefineInt("seed", 7, "seed");
  const Status status = flags.Parse(argc, argv, 2);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }
  const auto klass = FindDefectClass(flags.GetString("defect"));
  if (!klass.ok()) {
    std::fprintf(stderr, "%s\n", klass.status().ToString().c_str());
    return 1;
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  SimCore core(1, rng.Split(1));
  CatalogOptions catalog;
  catalog.p_latent = 0.0;
  const DefectSpec spec = DrawDefect(*klass, catalog, rng);
  core.AddDefect(spec);
  std::printf("planted: %s on unit %s (base rate %.2e)\n", spec.label.c_str(),
              ExecUnitName(spec.unit), spec.fvt.base_rate);

  ConfessionOptions options;
  options.stress.iterations_per_unit = static_cast<uint64_t>(flags.GetInt("iterations"));
  options.max_attempts = static_cast<int>(flags.GetInt("attempts"));
  ConfessionTester tester(options);
  const Confession confession = tester.Interrogate(core, rng);
  if (confession.confessed) {
    std::printf("CONFESSED after %d attempt(s), %llu ops; failed units:", confession.attempts,
                static_cast<unsigned long long>(confession.ops_used));
    for (ExecUnit unit : confession.failed_units) {
      std::printf(" %s", ExecUnitName(unit));
    }
    std::printf("\n");
    return 0;
  }
  std::printf("no confession after %d attempts (%llu ops) — limited reproducibility\n",
              confession.attempts, static_cast<unsigned long long>(confession.ops_used));
  return 0;
}

int CmdScreen(int argc, const char* const* argv) {
  FlagSet flags;
  flags.DefineString("defect", "", "defect class to plant (empty = healthy core)");
  flags.DefineInt("iterations", 512, "iterations per unit");
  flags.DefineBool("sweep", true, "sweep f/V/T corners");
  flags.DefineInt("seed", 7, "seed");
  const Status status = flags.Parse(argc, argv, 2);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nflags:\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 1;
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  SimCore core(1, rng.Split(1));
  const std::string defect_name = flags.GetString("defect");
  if (!defect_name.empty()) {
    const auto klass = FindDefectClass(defect_name);
    if (!klass.ok()) {
      std::fprintf(stderr, "%s\n", klass.status().ToString().c_str());
      return 1;
    }
    CatalogOptions catalog;
    catalog.p_latent = 0.0;
    core.AddDefect(DrawDefect(*klass, catalog, rng));
  }

  StressOptions options;
  options.iterations_per_unit = static_cast<uint64_t>(flags.GetInt("iterations"));
  if (flags.GetBool("sweep")) {
    options.sweep = StandardScreeningSweep();
  }
  const StressReport report = RunStressBattery(core, rng, options);
  std::printf("battery: %s (%llu ops)\n", report.passed() ? "PASSED" : "FAILED",
              static_cast<unsigned long long>(report.total_ops));
  for (const UnitStressResult& unit : report.per_unit) {
    if (!unit.passed()) {
      std::printf("  unit %-8s mismatches=%llu machine_check=%s\n", ExecUnitName(unit.unit),
                  static_cast<unsigned long long>(unit.mismatches),
                  unit.machine_check ? "yes" : "no");
    }
  }
  return report.passed() ? 0 : 2;
}

void PrintTopLevelUsage() {
  std::printf("mercurialctl <command> [flags]\n\ncommands:\n"
              "  study        run a fleet lifecycle study\n"
              "  trace        run a study with the flight recorder on; print incident timelines\n"
              "  recover      inspect + verify a journal file written by `study --journal`\n"
              "  interrogate  plant a defect and extract a confession\n"
              "  screen       run the stress battery on one core\n"
              "  defects      list the defect catalog\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintTopLevelUsage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "study") {
    return CmdStudy(argc, argv);
  }
  if (command == "trace") {
    return CmdTrace(argc, argv);
  }
  if (command == "recover") {
    return CmdRecover(argc, argv);
  }
  if (command == "interrogate") {
    return CmdInterrogate(argc, argv);
  }
  if (command == "screen") {
    return CmdScreen(argc, argv);
  }
  if (command == "defects") {
    return CmdDefects();
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  PrintTopLevelUsage();
  return 1;
}
