// The self-inverting AES case study (§2 of the paper, experiment E10).
//
// "A deterministic AES mis-computation, which was 'self-inverting': encrypting and decrypting
// on the same core yielded the identity function, but decryption elsewhere yielded gibberish."
//
// This example reproduces the defect (a corrupted round constant in the key-expansion unit),
// shows why a same-core round-trip self-check is blind to it, and fixes it with the
// cross-core-checking library from src/mitigate.

#include <cstdio>
#include <string>

#include "src/common/rng.h"
#include "src/mitigate/selfcheck.h"
#include "src/sim/core.h"
#include "src/substrate/aes.h"
#include "src/workload/core_routines.h"

using namespace mercurial;

namespace {

std::string Hex(const std::vector<uint8_t>& data, size_t n = 16) {
  std::string out;
  char buffer[4];
  for (size_t i = 0; i < std::min(n, data.size()); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%02x", data[i]);
    out += buffer;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== the self-inverting AES mercurial core ==\n\n");

  // The defective core: its AES key-expansion hardware computes a wrong round constant.
  SimCore defective(/*id=*/7, Rng(7));
  DefectSpec defect;
  defect.label = "self-inverting-aes";
  defect.unit = ExecUnit::kAes;
  defect.effect = DefectEffect::kRconCorrupt;
  defect.opcode_mask = 1ull << kAesOpRcon;
  defect.xor_mask = 0x10;
  defect.fvt.base_rate = 1.0;  // deterministic
  defective.AddDefect(defect);

  SimCore healthy(/*id=*/8, Rng(8));

  uint8_t key[kAesKeyBytes];
  Rng rng(2021);
  rng.FillBytes(key, sizeof(key));
  const std::string message = "hyperscaler production data: do not corrupt";
  const std::vector<uint8_t> plaintext(message.begin(), message.end());

  // Encrypt on the defective core; decrypt on the same core: identity!
  const auto ciphertext = CoreAesCtr(defective, key, /*nonce=*/1, plaintext);
  const auto same_core = CoreAesCtr(defective, key, 1, ciphertext);
  std::printf("plaintext          : %s\n", message.c_str());
  std::printf("ciphertext (bad)   : %s...\n", Hex(ciphertext).c_str());
  std::printf("same-core decrypt  : %s   <- looks perfect!\n",
              std::string(same_core.begin(), same_core.end()).c_str());

  // Decrypt anywhere else: gibberish.
  const auto cross_core = CoreAesCtr(healthy, key, 1, ciphertext);
  std::printf("cross-core decrypt : %s   <- gibberish\n", Hex(cross_core).c_str());
  const auto golden = AesCtrTransform(ExpandAesKey(key), 1, plaintext);
  std::printf("ciphertext matches spec: %s\n\n", ciphertext == golden ? "yes" : "NO");

  // A same-core round-trip self-check passes — the corruption ships.
  SelfCheckingAes blind(&defective, nullptr, CryptoCheckMode::kSameCoreRoundTrip);
  const auto blind_result = blind.Encrypt(key, 2, plaintext);
  std::printf("same-core self-check: %s (caught %llu corruptions)\n",
              blind_result.ok() ? "PASSED (wrongly)" : "failed",
              static_cast<unsigned long long>(blind.stats().corruptions_caught));

  // The cross-core checking library catches it and re-encrypts on the checker core.
  SelfCheckingAes checked(&defective, &healthy, CryptoCheckMode::kCrossCoreRoundTrip);
  const auto checked_result = checked.Encrypt(key, 2, plaintext);
  const auto golden2 = AesCtrTransform(ExpandAesKey(key), 2, plaintext);
  std::printf("cross-core check   : caught %llu corruption(s); final ciphertext correct: %s\n",
              static_cast<unsigned long long>(checked.stats().corruptions_caught),
              checked_result.ok() && *checked_result == golden2 ? "yes" : "NO");

  std::printf(
      "\nlesson: 'correctness is often best checked at the endpoints' (§7) — and the endpoint\n"
      "must not share the defective hardware with the computation it is checking.\n");
  return 0;
}
