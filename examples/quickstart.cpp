// Quickstart: plant a defect on a simulated core, watch a real computation go wrong, then
// catch the core with a stress-test confession and quarantine it.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/common/rng.h"
#include "src/detect/confession.h"
#include "src/sched/scheduler.h"
#include "src/sim/core.h"
#include "src/sim/defect_catalog.h"
#include "src/workload/core_routines.h"
#include "src/workload/workload.h"

using namespace mercurial;

int main() {
  std::printf("== mercurial quickstart ==\n\n");

  // 1. A healthy core computes exactly like the golden substrate.
  SimCore healthy(/*id=*/0, Rng(1));
  Rng rng(42);
  std::vector<uint8_t> payload(1024);
  rng.FillBytes(payload.data(), payload.size());
  const std::vector<uint8_t> copy = CoreMemcpy(healthy, payload);
  std::printf("healthy core memcpy correct: %s\n", copy == payload ? "yes" : "NO");

  // 2. Plant a "mercurial" defect: a stuck bit in the data-copy engine, the paper's
  //    "repeated bit-flips in strings at a particular bit position".
  SimCore mercurial_core(/*id=*/1, Rng(2));
  DefectSpec defect;
  defect.label = "copy-stuck-bit";
  defect.unit = ExecUnit::kCopy;
  defect.effect = DefectEffect::kStuckSet;
  defect.bit_index = 17;
  defect.fvt.base_rate = 0.02;  // fires on ~2% of 8-byte copy chunks
  mercurial_core.AddDefect(defect);

  int corrupted_copies = 0;
  for (int i = 0; i < 100; ++i) {
    rng.FillBytes(payload.data(), payload.size());
    if (CoreMemcpy(mercurial_core, payload) != payload) {
      ++corrupted_copies;
    }
  }
  std::printf("mercurial core corrupted %d of 100 copies (silently!)\n", corrupted_copies);

  // 3. Run the production workload corpus on it and classify the symptoms (§2 taxonomy).
  WorkloadOptions workload_options;
  workload_options.check_probability = 0.5;
  auto corpus = BuildStandardCorpus(workload_options);
  int counts[kSymptomCount] = {};
  for (int round = 0; round < 30; ++round) {
    for (auto& workload : corpus) {
      ++counts[static_cast<int>(workload->Run(mercurial_core, rng).symptom)];
    }
  }
  std::printf("\nsymptoms over %d corpus runs:\n", 30 * kWorkloadKindCount);
  for (int s = 0; s < kSymptomCount; ++s) {
    std::printf("  %-22s %d\n", SymptomName(static_cast<Symptom>(s)), counts[s]);
  }

  // 4. Extract a confession with a directed stress battery (f/V/T sweep included).
  ConfessionTester tester(ConfessionOptions{});
  const Confession confession = tester.Interrogate(mercurial_core, rng);
  std::printf("\nconfession: %s", confession.confessed ? "CONFESSED, failed units:" : "evaded");
  for (ExecUnit unit : confession.failed_units) {
    std::printf(" %s", ExecUnitName(unit));
  }
  std::printf(" (%llu stress ops)\n", static_cast<unsigned long long>(confession.ops_used));

  // 5. Quarantine and retire the core so the scheduler stops placing work on it.
  CoreScheduler scheduler(/*core_count=*/2, SchedulerCosts{});
  scheduler.Quarantine(1);
  scheduler.Retire(1);
  std::printf("core 1 state: %s; schedulable cores remaining: %zu\n",
              CoreStateName(scheduler.state(1)), scheduler.active_count());
  return 0;
}
