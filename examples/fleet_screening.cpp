// Fleet-scale CEE lifecycle demo: build a fleet with planted mercurial cores, run the full
// detect -> suspect -> confess -> quarantine pipeline for two simulated years, and print the
// §4 metrics plus an ASCII rendition of Fig. 1's incident-rate series.

#include <algorithm>
#include <cstdio>

#include "src/core/fleet_study.h"

using namespace mercurial;

namespace {

void PrintSeries(const char* label, const std::vector<double>& series, double scale) {
  std::printf("%s\n", label);
  // Aggregate weekly buckets into ~26 columns for terminal display.
  const size_t columns = 26;
  const size_t per_column = std::max<size_t>(1, series.size() / columns);
  for (size_t c = 0; c * per_column < series.size(); ++c) {
    double sum = 0.0;
    for (size_t i = c * per_column; i < std::min(series.size(), (c + 1) * per_column); ++i) {
      sum += series[i];
    }
    const int bars = static_cast<int>(sum * scale + 0.5);
    std::printf("  w%03zu |", c * per_column);
    for (int b = 0; b < std::min(bars, 60); ++b) {
      std::printf("#");
    }
    std::printf(" %.2f\n", sum);
  }
}

}  // namespace

int main() {
  StudyOptions options;
  options.seed = 2021;
  options.fleet.machine_count = 1500;
  options.fleet.mercurial_rate_multiplier = 25.0;
  options.duration = SimTime::Days(2 * 365);
  options.work_units_per_core_day = 25;
  options.workload.payload_bytes = 256;

  FleetStudy study(options);
  std::printf("fleet: %zu machines, %zu cores, %zu planted mercurial cores (%.2f per 1000 "
              "machines)\n",
              study.fleet().machine_count(), study.fleet().core_count(),
              study.fleet().mercurial_cores().size(),
              static_cast<double>(study.fleet().mercurial_cores().size()) /
                  (static_cast<double>(options.fleet.machine_count) / 1000.0));
  std::printf("running %lld simulated days...\n\n",
              static_cast<long long>(options.duration.seconds() / 86400));

  const StudyReport report = study.Run();

  std::printf("--- symptom taxonomy (%llu work units on active mercurial cores) ---\n",
              static_cast<unsigned long long>(report.work_units_executed));
  for (int s = 1; s < kSymptomCount; ++s) {
    std::printf("  %-22s %llu\n", SymptomName(static_cast<Symptom>(s)),
                static_cast<unsigned long long>(report.symptom_counts[s]));
  }

  std::printf("\n--- detection pipeline ---\n");
  std::printf("  screen failures          %llu\n",
              static_cast<unsigned long long>(report.screen_failures));
  std::printf("  suspects processed       %llu\n",
              static_cast<unsigned long long>(report.quarantine.suspects_processed));
  std::printf("  confessions              %llu\n",
              static_cast<unsigned long long>(report.quarantine.confessions));
  std::printf("  retirements (TP/FP)      %llu (%llu/%llu)\n",
              static_cast<unsigned long long>(report.quarantine.retirements),
              static_cast<unsigned long long>(report.quarantine.true_positive_retirements),
              static_cast<unsigned long long>(report.quarantine.false_positive_retirements));
  std::printf("  releases (cleared)       %llu\n",
              static_cast<unsigned long long>(report.quarantine.releases));
  std::printf("  mercurial caught         %llu of %zu\n",
              static_cast<unsigned long long>(report.mercurial_retired),
              report.true_mercurial_cores);
  std::printf("  detection latency        p50=%.0f days  p90=%.0f days\n",
              report.detection_latency_days.Quantile(0.5),
              report.detection_latency_days.Quantile(0.9));
  std::printf("  stranded capacity        %.1f core-days\n",
              report.scheduler.stranded_core_seconds / 86400.0);
  std::printf("  incidence: planted %.2f vs detected %.2f per 1000 machines\n",
              report.planted_per_thousand_machines, report.detected_per_thousand_machines);

  std::printf("\n--- Fig. 1: reported CEE incidents (normalized, monthly bins) ---\n");
  PrintSeries("user-reported:", report.weekly_user_rate, 2.0);
  PrintSeries("automatically-reported:", report.weekly_auto_rate, 2.0);
  return 0;
}
