// The paper's opening scenario (§1): "Imagine you are running a massive-scale data-analysis
// pipeline in production, and one day it starts to give you wrong answers... a class of
// computations are yielding corrupt results... only a small subset of the server machines are
// repeatedly responsible."
//
// This example runs a compress -> encrypt -> store pipeline over a pool of cores, one of which
// is mercurial, three ways:
//   1. blind           — no checking: silent corruption escapes into the output store
//   2. end-to-end      — client-side checksums (Colossus-style): corruption detected, data loss
//                        visible instead of silent
//   3. fully mitigated — verified compression, cross-core-checked encryption, checksummed
//                        store with write verification: every record lands correct

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/mitigate/e2e_store.h"
#include "src/mitigate/selfcheck.h"
#include "src/sim/core.h"
#include "src/substrate/aes.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"
#include "src/workload/core_routines.h"

using namespace mercurial;

namespace {

constexpr int kRecords = 200;
constexpr size_t kRecordBytes = 512;

struct Pool {
  std::vector<std::unique_ptr<SimCore>> cores;

  Pool() {
    for (int i = 0; i < 4; ++i) {
      cores.push_back(std::make_unique<SimCore>(i, Rng(100 + i)));
    }
    // Core 2 is mercurial: sporadic bit flips in its copy engine.
    DefectSpec defect;
    defect.unit = ExecUnit::kCopy;
    defect.effect = DefectEffect::kBitFlip;
    defect.fvt.base_rate = 0.001;
    cores[2]->AddDefect(defect);
  }

  SimCore& next(int i) { return *cores[i % cores.size()]; }
};

std::vector<uint8_t> MakeRecord(Rng& rng) {
  std::vector<uint8_t> record(kRecordBytes);
  rng.FillBytes(record.data(), kRecordBytes / 4);  // part random, part repetitive
  for (size_t i = kRecordBytes / 4; i < kRecordBytes; ++i) {
    record[i] = record[i % (kRecordBytes / 4)];
  }
  return record;
}

// Decrypt+decompress a stored blob on a healthy reference core and compare to the original.
bool RecordIntact(const std::vector<uint8_t>& stored, const uint8_t key[16], uint64_t nonce,
                  const std::vector<uint8_t>& original) {
  const auto decrypted = AesCtrTransform(ExpandAesKey(key), nonce, stored);
  const auto decompressed = LzDecompress(decrypted);
  return decompressed.ok() && *decompressed == original;
}

}  // namespace

int main() {
  std::printf("== resilient data-analysis pipeline ==\n");
  std::printf("4 cores, core 2 mercurial (copy-engine bit flips), %d records\n\n", kRecords);

  uint8_t key[16];
  Rng key_rng(555);
  key_rng.FillBytes(key, sizeof(key));

  // --- Variant 1: blind pipeline ----------------------------------------------------------
  {
    Pool pool;
    Rng rng(1);
    SimCore store_server(99, Rng(99));
    ChecksummedStore store(&store_server, /*verify_on_write=*/false);
    int silent_corruptions = 0;
    for (int r = 0; r < kRecords; ++r) {
      const auto record = MakeRecord(rng);
      SimCore& core = pool.next(r);
      // compress on core (decode path is what is corruptible here: emulate a copy-heavy
      // encoder by round-tripping the buffer through the core's copy engine first).
      const auto staged = CoreMemcpy(core, record);
      const auto compressed = LzCompress(staged);
      const auto encrypted = CoreAesCtr(core, key, r, compressed);
      (void)store.Write(r, encrypted);  // store server is healthy; damage already done
      const auto read_back = store.Read(r);
      if (read_back.ok() && !RecordIntact(*read_back, key, r, record)) {
        ++silent_corruptions;
      }
    }
    std::printf("1. blind pipeline       : %d of %d records SILENTLY corrupt in the store\n",
                silent_corruptions, kRecords);
  }

  // --- Variant 2: end-to-end checksums ----------------------------------------------------
  {
    Pool pool;
    Rng rng(1);
    int detected = 0;
    int escaped = 0;
    for (int r = 0; r < kRecords; ++r) {
      const auto record = MakeRecord(rng);
      SimCore& core = pool.next(r);
      const uint32_t client_crc = Crc32(record);  // computed before entering the pipeline
      const auto staged = CoreMemcpy(core, record);
      const auto compressed = LzCompress(staged);
      const auto encrypted = CoreAesCtr(core, key, r, compressed);
      // End-to-end validation at the consumer: decrypt/decompress and check the client CRC.
      const auto decrypted = AesCtrTransform(ExpandAesKey(key), r, encrypted);
      const auto decompressed = LzDecompress(decrypted);
      if (!decompressed.ok() || Crc32(*decompressed) != client_crc) {
        ++detected;  // corruption caught: retry / alert instead of silent damage
      } else if (*decompressed != record) {
        ++escaped;
      }
    }
    std::printf("2. end-to-end checksums : %d corruptions DETECTED, %d escaped\n", detected,
                escaped);
  }

  // --- Variant 3: fully mitigated ---------------------------------------------------------
  {
    Pool pool;
    Rng rng(1);
    SimCore store_server(99, Rng(99));
    ChecksummedStore store(&store_server, /*verify_on_write=*/true);
    SelfCheckStats compress_stats;
    int stored_ok = 0;
    int caught = 0;
    for (int r = 0; r < kRecords; ++r) {
      const auto record = MakeRecord(rng);
      SimCore& core = pool.next(r);
      SimCore& checker = pool.next(r + 1);  // a different core verifies

      // Verified compression (round-trip checked on the worker core).
      const auto compressed = CompressVerified(core, record, &compress_stats);
      if (!compressed.ok()) {
        ++caught;
        continue;
      }
      // Cross-core-checked encryption.
      SelfCheckingAes aes(&core, &checker, CryptoCheckMode::kCrossCoreRoundTrip);
      const auto encrypted = aes.Encrypt(key, r, *compressed);
      caught += aes.stats().corruptions_caught > 0 ? 1 : 0;
      if (!encrypted.ok()) {
        continue;
      }
      if (store.Write(r, *encrypted).ok()) {
        const auto read_back = store.Read(r);
        if (read_back.ok() && RecordIntact(*read_back, key, r, record)) {
          ++stored_ok;
        }
      }
    }
    caught += static_cast<int>(compress_stats.corruptions_caught);
    std::printf("3. fully mitigated      : %d of %d records stored intact (%d corruptions "
                "caught and repaired in flight)\n",
                stored_ok, kRecords, caught);
  }

  std::printf("\nThe mercurial core is still in the pool in every variant; only the checking\n"
              "discipline differs. Detection turns silent corruption into recoverable errors.\n");
  return 0;
}
