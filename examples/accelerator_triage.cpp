// Accelerator CEE triage (§9): a defective SIMT lane corrupts an ML-style pipeline, the naive
// run-twice check is blind to it, and rotation checking plus directed lane screening localize
// the culprit — after which work is simply steered around the bad lane.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/accel/accelerator.h"
#include "src/common/rng.h"

using namespace mercurial;

int main() {
  std::printf("== accelerator CEE triage ==\n\n");

  // A 64-lane device whose lane 37 deterministically miscomputes (the GPU analog of the
  // paper's deterministic AES case: same inputs, same wrong answer, every time).
  SimAccelerator device(64, Rng(7));
  LaneDefectSpec defect;
  defect.lane = 37;
  defect.fire_rate = 1.0;
  defect.bit_index = -1;  // deterministic wrong value
  device.AddLaneDefect(defect);

  Rng rng(2021);
  const size_t dim = 32;
  std::vector<double> activations(dim * dim);
  std::vector<double> weights(dim * dim);
  for (auto& v : activations) {
    v = rng.NextDouble() * 2 - 1;
  }
  for (auto& v : weights) {
    v = rng.NextDouble() * 2 - 1;
  }

  // 1. The layer computes; some output cells are silently wrong.
  const auto out = device.TiledMatmul(activations, weights, dim, dim, dim);
  int wrong_cells = 0;
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      double want = 0.0;
      for (size_t x = 0; x < dim; ++x) {
        want += activations[i * dim + x] * weights[x * dim + j];
      }
      wrong_cells += (out[i * dim + j] != want) ? 1 : 0;
    }
  }
  std::printf("matmul: %d of %zu output cells silently corrupt (every cell lane 37 owns)\n",
              wrong_cells, dim * dim);

  // 2. Naive detection: run the kernel twice, same lane assignment. Blind.
  std::vector<double> a(512);
  std::vector<double> b(512);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  const AccelCheckResult repeat = CheckByRepeat(device, LaneOp::kMul, a, b);
  std::printf("run-twice check:  %s  <- deterministic lane defects reproduce exactly\n",
              repeat.corruption_detected ? "detected" : "PASSED (wrongly)");

  // 3. Rotation detection: shift the work-to-lane mapping between runs. Caught + localized.
  const AccelCheckResult rotation = CheckByRotation(device, LaneOp::kMul, a, b);
  std::printf("rotation check:   %s, suspect lanes:", rotation.corruption_detected
                                                          ? "DETECTED"
                                                          : "passed");
  // Dedup for display.
  std::vector<uint32_t> lanes = rotation.suspect_lanes;
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  for (uint32_t lane : lanes) {
    std::printf(" %u", lane);
  }
  std::printf("\n");

  // 4. Directed screening pins down the exact lane.
  const auto failed = ScreenLanes(device, rng, /*probes_per_lane=*/64);
  std::printf("lane screening:   failed lanes:");
  for (uint32_t lane : failed) {
    std::printf(" %u", lane);
  }
  std::printf("\n");

  std::printf("\ntriage result: quarantine lane %u (1/64 of device capacity) instead of the\n"
              "whole accelerator — the lane-granularity version of §6.1's core isolation.\n",
              failed.empty() ? 0 : failed[0]);
  return 0;
}
