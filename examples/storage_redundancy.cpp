// Storage redundancy against mercurial servers (§3): the same blobs stored three ways —
// 3x replication, RS(4+2) erasure coding, and a scrubbed replica set — all running over
// servers whose copy engines sporadically corrupt data in flight and at rest.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/mitigate/ec_store.h"
#include "src/mitigate/scrub_store.h"
#include "src/sim/core.h"

using namespace mercurial;

namespace {

constexpr int kBlobs = 300;
constexpr size_t kBlobBytes = 512;

std::vector<std::unique_ptr<SimCore>> MakeServers(int n, double defect_rate, uint64_t seed) {
  std::vector<std::unique_ptr<SimCore>> servers;
  for (int i = 0; i < n; ++i) {
    servers.push_back(std::make_unique<SimCore>(i, Rng(seed + i)));
    DefectSpec spec;
    spec.label = "copy-bit-flip";
    spec.unit = ExecUnit::kCopy;
    spec.effect = DefectEffect::kBitFlip;
    spec.fvt.base_rate = defect_rate;
    servers.back()->AddDefect(spec);
  }
  return servers;
}

std::vector<SimCore*> Ptrs(const std::vector<std::unique_ptr<SimCore>>& owned) {
  std::vector<SimCore*> ptrs;
  for (const auto& core : owned) {
    ptrs.push_back(core.get());
  }
  return ptrs;
}

}  // namespace

int main() {
  std::printf("== storage redundancy vs mercurial servers ==\n");
  std::printf("every server corrupts ~0.5%% of 8-byte copy chunks; %d blobs of %zu bytes\n\n",
              kBlobs, kBlobBytes);

  Rng data_rng(2021);
  std::vector<std::vector<uint8_t>> blobs(kBlobs, std::vector<uint8_t>(kBlobBytes));
  for (auto& blob : blobs) {
    data_rng.FillBytes(blob.data(), blob.size());
  }

  // --- 3x replication ----------------------------------------------------------------------
  {
    auto servers = MakeServers(3, 0.005, 100);
    ReplicatedBlobStore store(Ptrs(servers));
    for (int b = 0; b < kBlobs; ++b) {
      store.Write(static_cast<uint64_t>(b), blobs[b]);
    }
    int intact = 0;
    for (int b = 0; b < kBlobs; ++b) {
      const auto read = store.Read(static_cast<uint64_t>(b));
      intact += read.ok() && *read == blobs[b] ? 1 : 0;
    }
    std::printf("replication 3x      : %3d/%d intact reads, %llu failovers, 3.0x storage\n",
                intact, kBlobs,
                static_cast<unsigned long long>(store.stats().read_failovers));
  }

  // --- RS(4+2) erasure coding --------------------------------------------------------------
  {
    auto servers = MakeServers(6, 0.005, 200);
    ErasureCodedStore store(Ptrs(servers), 4, 2);
    for (int b = 0; b < kBlobs; ++b) {
      store.Write(static_cast<uint64_t>(b), blobs[b]);
    }
    int intact = 0;
    for (int b = 0; b < kBlobs; ++b) {
      const auto read = store.Read(static_cast<uint64_t>(b));
      intact += read.ok() && *read == blobs[b] ? 1 : 0;
    }
    std::printf("erasure RS(4+2)     : %3d/%d intact reads, %llu shards discarded, %llu "
                "reconstructions, %.1fx storage\n",
                intact, kBlobs,
                static_cast<unsigned long long>(store.stats().shards_discarded),
                static_cast<unsigned long long>(store.stats().reconstructions),
                store.storage_overhead());
  }

  // --- replication + background scrubbing ---------------------------------------------------
  {
    auto servers = MakeServers(3, 0.005, 300);
    ReplicatedBlobStore store(Ptrs(servers));
    for (int b = 0; b < kBlobs; ++b) {
      store.Write(static_cast<uint64_t>(b), blobs[b]);
    }
    const uint64_t repairs = store.Scrub() + store.Scrub();
    int intact = 0;
    for (int b = 0; b < kBlobs; ++b) {
      const auto read = store.Read(static_cast<uint64_t>(b));
      intact += read.ok() && *read == blobs[b] ? 1 : 0;
    }
    std::printf("replication+scrub   : %3d/%d intact reads, %llu latent corruptions repaired "
                "before any client saw them\n",
                intact, kBlobs, static_cast<unsigned long long>(repairs));
  }

  std::printf("\n§3's point, demonstrated: for STORAGE, 'the right result is obvious and\n"
              "simple to check — it's the identity function', so coding and scrubbing buy\n"
              "tolerance cheaply. Computation gets no such discount (see bench_overheads).\n");
  return 0;
}
