// Integration tests for src/core: the end-to-end FleetStudy lifecycle.

#include <gtest/gtest.h>

#include "src/core/fleet_study.h"

namespace mercurial {
namespace {

StudyOptions SmallStudy(uint64_t seed = 7) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.seed = seed ^ 0x5a5a;
  options.fleet.machine_count = 120;
  options.fleet.mercurial_rate_multiplier = 60.0;  // dense enough to exercise the pipeline
  options.duration = SimTime::Days(200);
  options.work_units_per_core_day = 15;
  options.workload.payload_bytes = 256;
  return options;
}

TEST(FleetStudyTest, ReportShapeAndAccounting) {
  FleetStudy study(SmallStudy());
  const StudyReport report = study.Run();

  EXPECT_EQ(report.machines, 120u);
  EXPECT_GT(report.cores, 1000u);
  EXPECT_GT(report.true_mercurial_cores, 0u);
  EXPECT_GT(report.work_units_executed, 0u);

  // Symptom counts sum to executed units.
  uint64_t total_symptoms = 0;
  for (uint64_t count : report.symptom_counts) {
    total_symptoms += count;
  }
  EXPECT_EQ(total_symptoms, report.work_units_executed);
  EXPECT_EQ(report.symptom_counts[static_cast<int>(Symptom::kSilentCorruption)],
            report.silent_corruptions);

  // Weekly series cover the duration and are equally long.
  EXPECT_EQ(report.weekly_user_rate.size(), report.weekly_auto_rate.size());
  EXPECT_GE(report.weekly_user_rate.size(), 28u);

  // Quarantine accounting is internally consistent.
  EXPECT_EQ(report.quarantine.retirements,
            report.quarantine.true_positive_retirements +
                report.quarantine.false_positive_retirements);
  EXPECT_LE(report.mercurial_retired, report.true_mercurial_cores);
  EXPECT_EQ(report.mercurial_retired, report.quarantine.true_positive_retirements);
  EXPECT_DOUBLE_EQ(report.planted_per_thousand_machines,
                   static_cast<double>(report.true_mercurial_cores) / 0.12);
}

TEST(FleetStudyTest, DeterministicUnderSeed) {
  FleetStudy a(SmallStudy(11));
  FleetStudy b(SmallStudy(11));
  const StudyReport ra = a.Run();
  const StudyReport rb = b.Run();
  EXPECT_EQ(ra.work_units_executed, rb.work_units_executed);
  EXPECT_EQ(ra.silent_corruptions, rb.silent_corruptions);
  EXPECT_EQ(ra.quarantine.retirements, rb.quarantine.retirements);
  EXPECT_EQ(ra.screen_failures, rb.screen_failures);
  EXPECT_EQ(ra.weekly_auto_rate, rb.weekly_auto_rate);
  EXPECT_EQ(ra.weekly_user_rate, rb.weekly_user_rate);
}

TEST(FleetStudyTest, SeedsChangeOutcomes) {
  FleetStudy a(SmallStudy(1));
  FleetStudy b(SmallStudy(2));
  const StudyReport ra = a.Run();
  const StudyReport rb = b.Run();
  EXPECT_NE(ra.work_units_executed, rb.work_units_executed);
}

TEST(FleetStudyTest, HealthyFleetProducesNoCorruptionAndNoRetirements) {
  StudyOptions options = SmallStudy();
  options.fleet.mercurial_rate_multiplier = 0.0;
  options.duration = SimTime::Days(120);
  FleetStudy study(options);
  const StudyReport report = study.Run();
  EXPECT_EQ(report.true_mercurial_cores, 0u);
  EXPECT_EQ(report.silent_corruptions, 0u);
  EXPECT_EQ(report.work_units_executed, 0u) << "healthy cores are fast-pathed";
  EXPECT_EQ(report.screen_failures, 0u);
  // Background software-bug noise must not retire healthy cores (the concentration test plus
  // confession requirement filters it out).
  EXPECT_EQ(report.quarantine.retirements, 0u);
}

TEST(FleetStudyTest, DetectionActuallyFindsMercurialCores) {
  FleetStudy study(SmallStudy(3));
  const StudyReport report = study.Run();
  EXPECT_GT(report.quarantine.suspects_processed, 0u);
  EXPECT_GT(report.quarantine.true_positive_retirements, 0u)
      << "a 200-day study over a dense fleet must catch someone";
  EXPECT_GT(report.screening_ops, 0u);
}

TEST(FleetStudyTest, ObservableSymptomsGenerateSignals) {
  FleetStudy study(SmallStudy(5));
  StudyReport report = study.Run();
  const uint64_t observable =
      report.symptom_counts[static_cast<int>(Symptom::kDetectedImmediately)] +
      report.symptom_counts[static_cast<int>(Symptom::kMachineCheck)] +
      report.symptom_counts[static_cast<int>(Symptom::kCrash)] +
      report.symptom_counts[static_cast<int>(Symptom::kDetectedLate)];
  EXPECT_GT(observable, 0u);
  EXPECT_GT(study.metrics().counter("signals.background"), 0u);
}

TEST(FleetStudyTest, BurnInCatchesActiveDefectsEarly) {
  StudyOptions with = SmallStudy(9);
  with.burn_in = true;
  with.duration = SimTime::Days(60);
  StudyOptions without = with;
  without.burn_in = false;

  FleetStudy study_with(with);
  FleetStudy study_without(without);
  const StudyReport report_with = study_with.Run();
  const StudyReport report_without = study_without.Run();
  // Burn-in screens every core at t=0, so cumulative screen failures can only be >=.
  EXPECT_GE(report_with.screen_failures + study_with.metrics().counter("signals.screen_fail"),
            report_without.screen_failures);
}

TEST(FleetStudyTest, CatalogOverrideShapesDefectPopulation) {
  StudyOptions options = SmallStudy(21);
  CatalogOptions catalog;
  catalog.p_latent = 0.0;
  catalog.min_machine_check_fraction = 1.0;
  catalog.max_machine_check_fraction = 1.0;
  options.fleet.catalog_override = catalog;
  options.duration = SimTime::Days(90);
  FleetStudy study(options);
  // Every planted defect (except the classes that force their own fraction) is fail-noisy.
  int noisy = 0;
  int total = 0;
  for (uint64_t index : study.fleet().mercurial_cores()) {
    for (const Defect& defect : study.fleet().core(index).defects()) {
      ++total;
      noisy += defect.spec().machine_check_fraction == 1.0 ? 1 : 0;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(noisy, 0);
}

TEST(FleetStudyTest, GrowingFleetDefersUninstalledMachines) {
  StudyOptions options = SmallStudy(22);
  options.fleet.install_spread = SimTime::Days(0);
  options.fleet.future_install_spread = SimTime::Days(10000);  // almost no machine installed
  options.duration = SimTime::Days(30);
  FleetStudy study(options);
  const size_t installed = study.fleet().InstalledMachines(SimTime::Days(30));
  EXPECT_LT(installed, study.fleet().machine_count() / 10)
      << "the population must mostly arrive later";
  const StudyReport report = study.Run();
  // Work only runs on installed mercurial cores; with almost none installed, very little runs.
  EXPECT_LT(report.work_units_executed, 2000u);
}

TEST(FleetStudyTest, SeriesWarmupTrimsLeadingWeeks) {
  StudyOptions base = SmallStudy(23);
  base.duration = SimTime::Days(140);
  StudyOptions trimmed = base;
  trimmed.series_warmup = SimTime::Weeks(8);
  FleetStudy study_a(base);
  FleetStudy study_b(trimmed);
  const StudyReport ra = study_a.Run();
  const StudyReport rb = study_b.Run();
  EXPECT_EQ(ra.weekly_user_rate.size(), rb.weekly_user_rate.size() + 8);
}

TEST(FleetStudyTest, McaTelemetryGradedAgainstGroundTruth) {
  StudyOptions options = SmallStudy(24);
  options.mca_bank_confusion = 0.0;
  FleetStudy study(options);
  const StudyReport report = study.Run();
  EXPECT_LE(report.mca_true_mercurial, report.mca_recidivists);
  EXPECT_LE(report.mca_unit_attribution_correct, report.mca_true_mercurial);
  if (report.mca_true_mercurial > 0) {
    // With perfect bank mapping, attribution should be perfect too.
    EXPECT_EQ(report.mca_unit_attribution_correct, report.mca_true_mercurial);
  }
}

TEST(FleetStudyTest, RunTwiceIsAnError) {
  FleetStudy study(SmallStudy());
  study.Run();
  EXPECT_DEATH(study.Run(), "Run can only be called once");
}

TEST(FleetStudyTest, StrandedCapacityAccounted) {
  FleetStudy study(SmallStudy(13));
  const StudyReport report = study.Run();
  if (report.quarantine.retirements > 0) {
    EXPECT_GT(report.scheduler.stranded_core_seconds, 0.0);
  }
}

}  // namespace
}  // namespace mercurial
