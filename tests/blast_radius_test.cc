// Tests for the blast-radius audit subsystem: the provenance ledger, the retroactive-repair
// orchestrator (budgeting, retries, shedding, conservation), and the audited fleet study
// end to end under repair-path chaos.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/core/fleet_study.h"
#include "src/mitigate/blast_radius.h"
#include "src/mitigate/repair_orchestrator.h"

namespace mercurial {
namespace {

// --- BlastRadiusLedger ------------------------------------------------------------------------

TEST(BlastRadiusLedgerTest, RecordsAndAggregatesPerCoreEpochKind) {
  BlastRadiusLedger ledger;
  ledger.RecordArtifacts(7, 0, ArtifactKind::kChecksummedWrite, 10, 1);
  ledger.RecordArtifacts(7, 0, ArtifactKind::kChecksummedWrite, 5, 0);
  ledger.RecordArtifacts(7, 0, ArtifactKind::kPlainOutput, 3, 2);
  ledger.RecordArtifacts(7, 2, ArtifactKind::kLogEpoch, 4, 0);
  ledger.RecordArtifacts(9, 2, ArtifactKind::kCheckpoint, 1, 1);

  EXPECT_EQ(ledger.artifacts_recorded(), 23u);
  EXPECT_EQ(ledger.corrupt_recorded(), 4u);

  const BlastRadiusLedger::CoreLedger* seven = ledger.Find(7);
  ASSERT_NE(seven, nullptr);
  ASSERT_EQ(seven->epochs.size(), 2u);
  EXPECT_EQ(seven->epochs[0].epoch, 0u);
  EXPECT_EQ(seven->epochs[0].counts[0].produced, 15u);
  EXPECT_EQ(seven->epochs[0].counts[0].corrupt, 1u);
  EXPECT_EQ(seven->epochs[0].produced(), 18u);
  EXPECT_EQ(seven->epochs[0].corrupt(), 3u);
  EXPECT_EQ(seven->epochs[1].epoch, 2u);
  EXPECT_EQ(seven->epochs[1].produced(), 4u);

  EXPECT_EQ(ledger.Find(8), nullptr);
}

TEST(BlastRadiusLedgerTest, NoteSignalKeepsTheEarliest) {
  BlastRadiusLedger ledger;
  ledger.NoteSignal(3, SimTime::Days(5));
  ledger.NoteSignal(3, SimTime::Days(2));
  ledger.NoteSignal(3, SimTime::Days(9));
  const BlastRadiusLedger::CoreLedger* record = ledger.Find(3);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->has_signal);
  EXPECT_EQ(record->first_signal, SimTime::Days(2));
}

TEST(BlastRadiusLedgerTest, MergeFoldsAndClearsTheSource) {
  BlastRadiusLedger main;
  main.RecordArtifacts(1, 0, ArtifactKind::kPlainOutput, 2, 0);
  BlastRadiusLedger shard;
  shard.RecordArtifacts(2, 0, ArtifactKind::kPlainOutput, 3, 1);
  shard.NoteSignal(2, SimTime::Days(1));

  main.MergeFrom(shard);
  EXPECT_EQ(main.artifacts_recorded(), 5u);
  EXPECT_EQ(main.corrupt_recorded(), 1u);
  ASSERT_NE(main.Find(2), nullptr);
  EXPECT_TRUE(main.Find(2)->has_signal);
  EXPECT_EQ(shard.artifacts_recorded(), 0u);
  EXPECT_EQ(shard.Find(2), nullptr);
}

TEST(BlastRadiusLedgerTest, WorkloadToArtifactKindMapping) {
  EXPECT_EQ(ArtifactKindForWorkload(WorkloadKind::kMemcpy), ArtifactKind::kChecksummedWrite);
  EXPECT_EQ(ArtifactKindForWorkload(WorkloadKind::kDbIndex), ArtifactKind::kLogEpoch);
  EXPECT_EQ(ArtifactKindForWorkload(WorkloadKind::kGarbageCollect), ArtifactKind::kCheckpoint);
  EXPECT_EQ(ArtifactKindForWorkload(WorkloadKind::kCrypto), ArtifactKind::kPlainOutput);
}

// --- RepairOrchestrator -----------------------------------------------------------------------

RepairOptions BaseRepairOptions() {
  RepairOptions options;
  options.enabled = true;
  options.epoch_length = SimTime::Days(1);
  options.repair_budget_per_tick = 1 << 20;
  options.max_attempts = 3;
  options.retry_backoff = SimTime::Days(1);
  options.retry_jitter = 0.0;  // deterministic backoff for the schedule assertions below
  options.onset_margin = SimTime::Days(3);
  options.max_lookback = SimTime::Days(180);
  return options;
}

void HealthyPool(RepairOrchestrator& repair) {
  repair.SetExecutorPool(16, [](uint64_t) { return false; });
}

void DefectivePool(RepairOrchestrator& repair) {
  repair.SetExecutorPool(16, [](uint64_t) { return true; });
}

TEST(RepairOrchestratorTest, SuspectSetReachesBackToEstimatedOnset) {
  // Signal at day 8, margin 3 days => onset estimate day 5: epochs 5..9 are suspect, 0..4
  // stay at rest.
  BlastRadiusLedger ledger;
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    ledger.RecordArtifacts(7, epoch, ArtifactKind::kChecksummedWrite, 10, 1);
  }
  ledger.NoteSignal(7, SimTime::Days(8));

  RepairOrchestrator repair(BaseRepairOptions(), Rng(1));
  HealthyPool(repair);
  repair.OnConviction(SimTime::Days(10), 7, ledger);
  EXPECT_EQ(repair.stats().convictions, 1u);
  EXPECT_EQ(repair.stats().suspect_epochs, 5u);
  EXPECT_EQ(repair.stats().suspect_artifacts, 50u);
  EXPECT_EQ(repair.backlog_artifacts(), 50u);
  EXPECT_EQ(repair.queued_tasks(), 5u);

  repair.Tick(SimTime::Days(10));
  EXPECT_EQ(repair.queued_tasks(), 0u);
  EXPECT_EQ(repair.stats().corruptions_repaired, 5u);
  repair.FinalizeAccounting(ledger);
  // The 5 corruptions in pre-onset epochs are the explicit at-rest remainder.
  EXPECT_EQ(repair.stats().corruptions_still_at_rest, 5u);
}

TEST(RepairOrchestratorTest, NoSignalFallsBackToLookbackWindow) {
  BlastRadiusLedger ledger;
  for (uint64_t epoch = 0; epoch < 300; epoch += 100) {
    ledger.RecordArtifacts(4, epoch, ArtifactKind::kPlainOutput, 1, 0);
  }
  RepairOrchestrator repair(BaseRepairOptions(), Rng(2));
  HealthyPool(repair);
  // Conviction at day 250, lookback 180 => onset day 70: only epochs 100 and 200 qualify.
  repair.OnConviction(SimTime::Days(250), 4, ledger);
  EXPECT_EQ(repair.stats().suspect_epochs, 2u);
}

TEST(RepairOrchestratorTest, BudgetCutoffResumesNextTickWithoutRetryPenalty) {
  // One 30-artifact epoch against a budget of 8: exactly four ticks of steady progress, and a
  // budget cutoff is backlog, not failure — no retries, no backoff, no abandonment.
  BlastRadiusLedger ledger;
  ledger.RecordArtifacts(5, 1, ArtifactKind::kChecksummedWrite, 30, 3);
  RepairOptions options = BaseRepairOptions();
  options.repair_budget_per_tick = 8;
  RepairOrchestrator repair(options, Rng(3));
  HealthyPool(repair);
  repair.OnConviction(SimTime::Days(2), 5, ledger);

  int ticks = 0;
  while (repair.queued_tasks() > 0) {
    ASSERT_LT(ticks, 10);
    repair.Tick(SimTime::Days(2));
    ++ticks;
  }
  EXPECT_EQ(ticks, 4) << "30 artifacts at 8 per tick";
  EXPECT_EQ(repair.stats().retries_scheduled, 0u);
  EXPECT_EQ(repair.stats().tasks_abandoned, 0u);
  EXPECT_EQ(repair.stats().artifacts_reverified, 30u);
  EXPECT_EQ(repair.stats().artifacts_reexecuted, 3u);
  EXPECT_EQ(repair.stats().corruptions_repaired, 3u);
  EXPECT_EQ(repair.backlog_artifacts(), 0u);
  repair.FinalizeAccounting(ledger);
  EXPECT_EQ(repair.stats().corruptions_still_at_rest, 0u);
}

TEST(RepairOrchestratorTest, HighestRiskEpochRepairsFirst) {
  // Epoch 5 (closest to the conviction) carries the marked corruption; with budget for only
  // one epoch per tick, it must be repaired before epoch 1.
  BlastRadiusLedger ledger;
  ledger.RecordArtifacts(6, 1, ArtifactKind::kChecksummedWrite, 10, 0);
  ledger.RecordArtifacts(6, 5, ArtifactKind::kChecksummedWrite, 10, 2);
  RepairOptions options = BaseRepairOptions();
  options.repair_budget_per_tick = 10;
  RepairOrchestrator repair(options, Rng(4));
  HealthyPool(repair);
  repair.OnConviction(SimTime::Days(6), 6, ledger);

  repair.Tick(SimTime::Days(6));
  EXPECT_EQ(repair.queued_tasks(), 1u);
  EXPECT_EQ(repair.stats().corruptions_repaired, 2u) << "the newest epoch went first";
}

TEST(RepairOrchestratorTest, DefectiveExecutorRetriesWithBackoffThenAbandons) {
  // Every executor draw is tainted: each repair pass that reaches a corrupt artifact is
  // voided. max_attempts = 3 => two backed-off retries, then the task is abandoned with its
  // corruption accounted as abandoned (and, after finalize, still at rest).
  BlastRadiusLedger ledger;
  ledger.RecordArtifacts(8, 2, ArtifactKind::kChecksummedWrite, 10, 2);
  RepairOrchestrator repair(BaseRepairOptions(), Rng(5));
  DefectivePool(repair);
  repair.OnConviction(SimTime::Days(3), 8, ledger);

  repair.Tick(SimTime::Days(3));
  EXPECT_EQ(repair.stats().retries_scheduled, 1u);
  EXPECT_EQ(repair.stats().defective_executor_retries, 1u);
  EXPECT_EQ(repair.queued_tasks(), 1u);

  // Backoff: the retry is due one full backoff later, not immediately.
  repair.Tick(SimTime::Days(3));
  EXPECT_EQ(repair.stats().defective_executor_retries, 1u) << "retry not due yet";

  repair.Tick(SimTime::Days(4));  // attempt 2 fails, backoff doubles
  EXPECT_EQ(repair.stats().retries_scheduled, 2u);
  repair.Tick(SimTime::Days(5));
  EXPECT_EQ(repair.stats().defective_executor_retries, 2u) << "doubled backoff not due yet";

  repair.Tick(SimTime::Days(6));  // attempt 3 fails => abandoned
  EXPECT_EQ(repair.stats().tasks_abandoned, 1u);
  EXPECT_EQ(repair.stats().corruptions_abandoned, 2u);
  EXPECT_EQ(repair.queued_tasks(), 0u);
  EXPECT_EQ(repair.backlog_artifacts(), 0u);
  EXPECT_EQ(repair.stats().corruptions_repaired, 0u);

  repair.FinalizeAccounting(ledger);
  EXPECT_EQ(repair.stats().corruptions_still_at_rest, 2u);
}

TEST(RepairOrchestratorTest, ReplicatedLogMajorityMasksDefectiveExecutor) {
  // Log epochs repair through the log's own replica majority: even an always-defective
  // executor pool cannot void them, and the path never needs an executor draw.
  BlastRadiusLedger ledger;
  ledger.RecordArtifacts(2, 1, ArtifactKind::kLogEpoch, 12, 4);
  RepairOrchestrator repair(BaseRepairOptions(), Rng(6));
  DefectivePool(repair);
  repair.OnConviction(SimTime::Days(2), 2, ledger);

  repair.Tick(SimTime::Days(2));
  EXPECT_EQ(repair.queued_tasks(), 0u);
  EXPECT_EQ(repair.stats().corruptions_repaired, 4u);
  EXPECT_EQ(repair.stats().defective_executor_retries, 0u);
  EXPECT_EQ(repair.stats().retries_scheduled, 0u);
}

TEST(RepairOrchestratorTest, BacklogBoundShedsOldestEpochsWithAccounting) {
  // 10 epochs x 10 artifacts against a 25-artifact backlog bound: the 8 oldest epochs are
  // shed (with their corruption counted), the 2 newest stay queued.
  BlastRadiusLedger ledger;
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    ledger.RecordArtifacts(3, epoch, ArtifactKind::kPlainOutput, 10, 1);
  }
  ledger.NoteSignal(3, SimTime::Days(1));
  RepairOptions options = BaseRepairOptions();
  options.max_backlog_artifacts = 25;
  RepairOrchestrator repair(options, Rng(7));
  HealthyPool(repair);
  repair.OnConviction(SimTime::Days(10), 3, ledger);

  EXPECT_EQ(repair.stats().backlog_peak, 100u) << "peak observed before shedding";
  EXPECT_EQ(repair.stats().epochs_shed, 8u);
  EXPECT_EQ(repair.stats().artifacts_shed, 80u);
  EXPECT_EQ(repair.stats().corruptions_shed, 8u);
  EXPECT_EQ(repair.backlog_artifacts(), 20u);
  EXPECT_EQ(repair.queued_tasks(), 2u);

  repair.Tick(SimTime::Days(10));
  repair.FinalizeAccounting(ledger);
  // Conservation: 10 corrupt total = 2 repaired + 8 shed + 0 at rest.
  EXPECT_EQ(repair.stats().corruptions_repaired, 2u);
  EXPECT_EQ(repair.stats().corruptions_still_at_rest, 0u);
  EXPECT_EQ(repair.stats().corruptions_repaired + repair.stats().corruptions_shed +
                repair.stats().corruptions_still_at_rest,
            ledger.corrupt_recorded());
}

TEST(RepairOrchestratorTest, DisabledOrchestratorIsInert) {
  BlastRadiusLedger ledger;
  ledger.RecordArtifacts(1, 0, ArtifactKind::kPlainOutput, 5, 1);
  RepairOptions options = BaseRepairOptions();
  options.enabled = false;
  RepairOrchestrator repair(options, Rng(8));
  repair.OnConviction(SimTime::Days(1), 1, ledger);
  repair.Tick(SimTime::Days(1));
  repair.FinalizeAccounting(ledger);
  EXPECT_EQ(repair.stats().convictions, 0u);
  EXPECT_EQ(repair.queued_tasks(), 0u);
  EXPECT_EQ(repair.stats().corruptions_still_at_rest, 0u);
}

TEST(RepairOrchestratorTest, ReinstatementCancelsQueuedRepairWork) {
  // Two convicted cores share the queue; core 7 is then reinstated (probation cleared), so
  // its still-queued passes are withdrawn with accounting while core 9's task runs as usual.
  BlastRadiusLedger ledger;
  for (uint64_t epoch = 0; epoch < 5; ++epoch) {
    ledger.RecordArtifacts(7, epoch, ArtifactKind::kChecksummedWrite, 10, 1);
  }
  ledger.NoteSignal(7, SimTime::Days(1));
  ledger.RecordArtifacts(9, 2, ArtifactKind::kPlainOutput, 8, 2);
  ledger.NoteSignal(9, SimTime::Days(1));

  RepairOrchestrator repair(BaseRepairOptions(), Rng(9));
  HealthyPool(repair);
  repair.OnConviction(SimTime::Days(6), 7, ledger);
  repair.OnConviction(SimTime::Days(6), 9, ledger);
  EXPECT_EQ(repair.queued_tasks(), 6u);
  EXPECT_EQ(repair.backlog_artifacts(), 58u);

  repair.OnReinstated(7);
  EXPECT_EQ(repair.stats().reinstated_epochs_cancelled, 5u);
  EXPECT_EQ(repair.stats().reinstated_artifacts_cancelled, 50u);
  EXPECT_EQ(repair.backlog_artifacts(), 8u);
  EXPECT_EQ(repair.queued_tasks(), 1u);

  repair.Tick(SimTime::Days(6));
  repair.FinalizeAccounting(ledger);
  // Conservation: 7 corrupt total = core 9's 2 repaired + core 7's 5 left at rest (the
  // cleared core's artifacts need no pass, so they are at-rest remainder — not shed).
  EXPECT_EQ(repair.stats().corruptions_repaired, 2u);
  EXPECT_EQ(repair.stats().corruptions_shed, 0u);
  EXPECT_EQ(repair.stats().corruptions_still_at_rest, 5u);
  EXPECT_EQ(repair.stats().corruptions_repaired + repair.stats().corruptions_shed +
                repair.stats().corruptions_still_at_rest,
            ledger.corrupt_recorded());

  // A disabled orchestrator ignores reinstatement hooks entirely.
  RepairOptions off = BaseRepairOptions();
  off.enabled = false;
  RepairOrchestrator inert(off, Rng(10));
  inert.OnReinstated(7);
  EXPECT_EQ(inert.stats().reinstated_epochs_cancelled, 0u);
  EXPECT_EQ(inert.stats().reinstated_artifacts_cancelled, 0u);
}

// --- Audited fleet study under repair chaos ---------------------------------------------------

TEST(BlastRadiusStudyTest, ChaoticRepairConservesEveryInjectedCorruption) {
  // End-to-end acceptance property: with repair-path chaos on and a backlog bound tight
  // enough to force shedding, retries and sheds both occur — and yet every corruption the
  // harness injected is classified as exactly one of repaired / shed / still at rest.
  StudyOptions options;
  options.seed = 20210601;
  options.fleet.machine_count = 200;
  options.fleet.mercurial_rate_multiplier = 250.0;
  options.duration = SimTime::Days(200);
  options.work_units_per_core_day = 20;
  options.workload.payload_bytes = 128;
  options.control_plane.max_retries = 2;
  options.control_plane.retry_backoff = SimTime::Days(1);
  options.audit.enabled = true;
  options.audit.repair_budget_per_tick = 64;
  options.audit.max_backlog_artifacts = 64;
  options.audit.max_attempts = 3;
  options.audit.retry_backoff = SimTime::Days(1);
  options.audit.chaos.repair_fail_reverify = 0.05;
  options.audit.chaos.repair_on_defective = 0.20;
  options.audit.chaos.repair_partial = 0.10;

  FleetStudy study(options);
  const StudyReport report = study.Run();

  ASSERT_TRUE(report.audit_enabled);
  EXPECT_EQ(report.artifacts_tagged, report.work_units_executed)
      << "every production work unit carries a provenance tag";
  ASSERT_GT(report.corruptions_tagged, 0u);
  EXPECT_GT(report.repair.convictions, 0u);
  EXPECT_GT(report.repair.artifacts_reverified, 0u);
  EXPECT_GT(report.repair.retries_scheduled, 0u) << "chaos forces backed-off retries";
  EXPECT_GT(report.repair.epochs_shed, 0u) << "the tight backlog bound forces shedding";
  // Conservation, exactly: nothing double-counted, nothing silently dropped.
  EXPECT_EQ(report.repair.corruptions_repaired + report.repair.corruptions_shed +
                report.repair.corruptions_still_at_rest,
            report.corruptions_tagged);
  // Injected repair-path faults were actually drawn.
  EXPECT_GT(report.repair.chaos.defective_repairs + report.repair.chaos.partial_repairs +
                report.repair.chaos.reverify_misses,
            0u);
}

}  // namespace
}  // namespace mercurial
