// Cross-module property tests: invariants that must hold across the whole defect catalog and
// detection stack, swept with parameterized suites.
//
//   P1. Healthy-core transparency: arbitrary op sequences on a defect-free core are
//       bit-identical to golden (differential fuzzing).
//   P2. Every catalog defect class, planted loudly, is caught by a full-coverage stress
//       battery with an f/V/T sweep.
//   P3. Every catalog defect class, planted loudly, produces observable symptoms or wrong
//       outputs under the production corpus.
//   P4. Determinism: a (seed, defect) pair replays the exact same corruption sequence.
//   P5. Mitigation soundness: checked sorting and the e2e store never RETURN wrong data, for
//       any defect class afflicting their units (they may abort, never lie).
//   P6. Fleet-build determinism: Fleet::Build is a pure function of its options across random
//       seeds and product mixes (population, install times, planted defects).
//   P7. Shard-partition soundness: PartitionCores covers every core exactly once, in order,
//       for random fleet sizes and shard counts.
//   P8. Metric-merge associativity: folding shard MetricRegistry deltas in shard order is
//       exactly the serial accumulation of the same events.
//   P9. Conviction cause chains: every convicted core's trace walks the lifecycle in order —
//       suspicion before admission, admission before interrogation, verdict at conviction,
//       repair only after conviction, defect fires never after the defect-driven signals.
//   P10. Quarantine admission books balance: every kQuarantineAdmit is closed by exactly one
//       terminal event (verdict or force-release), except for suspects still pending at study
//       end, which the report counts explicitly.
//   P11. Flight-recorder conservation: under adversarially tiny ring capacities and sampling,
//       events_dropped + events_recorded == events_emitted — loss is loud, never silent.
//   P12. Conviction lifecycle conservation: with quorum + probation + verdict chaos on, every
//       conviction either retires on strong evidence or opens a probation record that is
//       closed by exactly one kProbationEnd (reinstated / escalated / fresh signal) or is
//       still pending at study end.
//   P13. Probation books balance per core: starts minus ends equals the pending count, and no
//       core holds more than one open probation record.
//   P14. Configured-but-disabled invisibility: quorum/probation options that are set but not
//       enabled leave the serialized trace byte-identical to an all-defaults run.
//   P15. Wheel completeness: a sparse (due-wheel) screening orchestrator, driven tick by tick
//       against a dense twin with identical streams, scheduler churn, fleet growth, and
//       guardrail throttles, screens exactly the same cores at exactly the same ticks — same
//       visit order, same outcomes, same deferral counts.
//   P16. Activation-queue exactness: the active-production index admits a core at the first
//       tick >= its earliest defect activation (install + onset) and never later — every core
//       with AnyDefectActive() is in its shard's slice — and retirement removes admitted and
//       pending cores alike, permanently.
//   P17. Crash-recovery conservation: with the write-ahead journal on and the controller
//       killed after every tick, the conviction/probation lifecycle books (P12/P13) still
//       balance exactly — no conviction, probation record, or repair item is lost or applied
//       twice across recoveries. The torn-tail variant loses frames by design, and every loss
//       is accounted: exact + prefix recoveries == crashes, truncated frames and reconcile
//       actions are counted, never silent.
//   P18. Every journal prefix is recoverable: truncating a journal at EVERY byte boundary
//       yields either a clean recovery to some durable tick (state exactly as it was at that
//       tick) or a loud DATA_LOSS refusal — never a crash, never a blend, never garbage.

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_set>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/fleet_study.h"
#include "src/fleet/fleet.h"
#include "src/mitigate/abft.h"
#include "src/telemetry/metrics.h"
#include "src/mitigate/e2e_store.h"
#include "src/sim/core.h"
#include "src/sim/defect_catalog.h"
#include "src/substrate/checksum.h"
#include "src/telemetry/trace.h"
#include "src/workload/stress.h"
#include "src/workload/workload.h"

namespace mercurial {
namespace {

// Loud, always-active version of a catalog class so properties can be verified with bounded
// work.
DefectSpec LoudDefect(DefectClass klass, uint64_t seed) {
  Rng rng(seed);
  CatalogOptions options;
  options.p_latent = 0.0;
  options.p_data_triggered = 0.0;
  options.log10_rate_min = -2.0;
  options.log10_rate_max = -1.5;
  options.max_machine_check_fraction = 0.0;
  return DrawDefect(klass, options, rng);
}

// --- P1: differential fuzzing of healthy cores ------------------------------------------------

TEST(PropertyTest, HealthyCoreDifferentialFuzz) {
  SimCore core(1, Rng(1));
  Rng rng(2);
  for (int round = 0; round < 2000; ++round) {
    const uint64_t a = rng.NextU64();
    const uint64_t b = rng.NextU64();
    switch (rng.UniformInt(0, 5)) {
      case 0: {
        const auto op = static_cast<AluOp>(rng.UniformInt(0, 7));
        const uint64_t got = core.Alu(op, a, b);
        SimCore fresh(2, Rng(3));
        ASSERT_EQ(got, fresh.Alu(op, a, b)) << "op " << static_cast<int>(op);
        break;
      }
      case 1:
        ASSERT_EQ(core.Mul(a, b), a * b);
        break;
      case 2:
        ASSERT_EQ(core.Div(a, b | 1), a / (b | 1));
        break;
      case 3:
        ASSERT_EQ(core.Load(a), a);
        ASSERT_EQ(core.Store(b), b);
        break;
      case 4: {
        uint8_t src[24];
        uint8_t dst[24];
        std::memcpy(src, &a, 8);
        std::memcpy(src + 8, &b, 8);
        std::memcpy(src + 16, &a, 8);
        core.Copy(dst, src, sizeof(src));
        ASSERT_EQ(std::memcmp(src, dst, sizeof(src)), 0);
        break;
      }
      case 5: {
        uint64_t target = a;
        ASSERT_TRUE(core.Cas(target, a, b));
        ASSERT_EQ(target, b);
        break;
      }
    }
  }
  EXPECT_EQ(core.counters().corruptions, 0u);
  EXPECT_EQ(core.counters().machine_checks, 0u);
}

// --- P2/P3 parameterized over the catalog ------------------------------------------------------

class DefectClassProperty : public ::testing::TestWithParam<int> {};

TEST_P(DefectClassProperty, FullBatteryCatchesLoudDefect) {
  const auto klass = static_cast<DefectClass>(GetParam());
  SimCore core(1, Rng(50 + GetParam()));
  core.AddDefect(LoudDefect(klass, 60 + GetParam()));
  Rng rng(70 + GetParam());
  StressOptions options;
  options.iterations_per_unit = 1024;
  options.sweep = StandardScreeningSweep();
  const StressReport report = RunStressBattery(core, rng, options);
  EXPECT_FALSE(report.passed()) << DefectClassName(klass)
                                << " evaded a loud full-coverage battery";
  // The battery must implicate the right unit.
  const auto failed = report.FailedUnits();
  const ExecUnit expected_unit = core.defects()[0].unit();
  EXPECT_TRUE(std::find(failed.begin(), failed.end(), expected_unit) != failed.end())
      << DefectClassName(klass) << ": wrong unit implicated";
}

TEST_P(DefectClassProperty, CorpusSurfacesLoudDefect) {
  const auto klass = static_cast<DefectClass>(GetParam());
  SimCore core(1, Rng(80 + GetParam()));
  core.AddDefect(LoudDefect(klass, 90 + GetParam()));
  WorkloadOptions options;
  options.payload_bytes = 512;
  options.check_probability = 1.0;
  auto corpus = BuildStandardCorpus(options);
  Rng rng(100 + GetParam());
  int troubled = 0;
  for (int round = 0; round < 30; ++round) {
    for (auto& workload : corpus) {
      const WorkloadResult result = workload->Run(core, rng);
      if (result.wrong_output || result.symptom != Symptom::kNone) {
        ++troubled;
      }
    }
  }
  EXPECT_GT(troubled, 0) << DefectClassName(klass)
                         << " produced zero symptoms across the whole corpus";
}

TEST_P(DefectClassProperty, CorruptionSequenceIsSeedDeterministic) {
  const auto klass = static_cast<DefectClass>(GetParam());
  auto run = [&](uint64_t seed) {
    SimCore core(1, Rng(seed));
    core.AddDefect(LoudDefect(klass, 123));
    Rng rng(999);
    std::vector<uint64_t> observations;
    for (int i = 0; i < 200; ++i) {
      observations.push_back(core.Alu(AluOp::kAdd, rng.NextU64(), rng.NextU64()));
      observations.push_back(core.Mul(rng.NextU64(), rng.NextU64()));
      uint64_t target = rng.NextU64();
      core.Cas(target, target, rng.NextU64());
      observations.push_back(target);
    }
    return observations;
  };
  EXPECT_EQ(run(42), run(42)) << "same seed must replay identical corruption";
}

INSTANTIATE_TEST_SUITE_P(AllClasses, DefectClassProperty,
                         ::testing::Range(0, kDefectClassCount));

// --- P5: mitigation soundness across the catalog -----------------------------------------------

class MitigationSoundness : public ::testing::TestWithParam<int> {};

TEST_P(MitigationSoundness, CheckedSortNeverLies) {
  const auto klass = static_cast<DefectClass>(GetParam());
  SimCore bad(1, Rng(200 + GetParam()));
  bad.AddDefect(LoudDefect(klass, 210 + GetParam()));
  SimCore good(2, Rng(220));
  std::vector<SimCore*> pool{&bad, &good};
  Rng rng(230 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint64_t> keys(128);
    for (auto& k : keys) {
      k = rng.NextU64();
    }
    std::vector<uint64_t> golden = keys;
    std::sort(golden.begin(), golden.end());
    const auto result = CheckedSort(keys, pool, 4, nullptr);
    if (result.ok()) {
      EXPECT_EQ(*result, golden) << DefectClassName(klass)
                                 << ": checked sort returned wrong data";
    }
    // Aborting is acceptable; lying is not.
  }
}

TEST_P(MitigationSoundness, E2eStoreNeverReturnsWrongBytes) {
  const auto klass = static_cast<DefectClass>(GetParam());
  SimCore server(1, Rng(300 + GetParam()));
  server.AddDefect(LoudDefect(klass, 310 + GetParam()));
  ChecksummedStore store(&server, /*verify_on_write=*/true);
  Rng rng(320 + GetParam());
  for (uint64_t key = 0; key < 20; ++key) {
    std::vector<uint8_t> data(128);
    rng.FillBytes(data.data(), data.size());
    if (!store.Write(key, data).ok()) {
      continue;  // fail-closed is fine
    }
    const auto read = store.Read(key);
    if (read.ok()) {
      EXPECT_EQ(*read, data) << DefectClassName(klass) << ": store returned corrupt bytes";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, MitigationSoundness,
                         ::testing::Range(0, kDefectClassCount));

// --- Substrate round-trip properties under random sizes ----------------------------------------

TEST(PropertyTest, MultisetDigestDetectsAnySingleSubstitution) {
  Rng rng(400);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.UniformInt(0, 63);
    std::vector<uint64_t> items(n);
    for (auto& item : items) {
      item = rng.NextU64();
    }
    const uint64_t digest = MultisetDigest(items.data(), n);
    std::vector<uint64_t> mutated = items;
    const size_t index = rng.UniformInt(0, n - 1);
    mutated[index] ^= 1ull << rng.UniformInt(0, 63);
    EXPECT_NE(MultisetDigest(mutated.data(), n), digest);
  }
}

// --- P6: fleet-build determinism across seeds and product mixes --------------------------------

TEST(PropertyTest, FleetBuildIsPureFunctionOfOptions) {
  Rng meta_rng(600);
  for (int trial = 0; trial < 12; ++trial) {
    FleetOptions options;
    options.machine_count = 20 + meta_rng.UniformInt(0, 80);
    options.seed = meta_rng.NextU64();
    options.product_mix = {meta_rng.NextDouble() + 0.01, meta_rng.NextDouble() + 0.01,
                           meta_rng.NextDouble() + 0.01};
    options.mercurial_rate_multiplier = 50.0 + meta_rng.NextDouble() * 200.0;
    options.future_install_spread = SimTime::Days(meta_rng.UniformInt(0, 200));

    Fleet first = Fleet::Build(options);
    Fleet second = Fleet::Build(options);

    ASSERT_EQ(first.machine_count(), second.machine_count());
    ASSERT_EQ(first.core_count(), second.core_count());
    ASSERT_EQ(first.mercurial_cores(), second.mercurial_cores()) << "trial " << trial;
    for (size_t m = 0; m < first.machine_count(); ++m) {
      ASSERT_EQ(first.machine(m).install_time(), second.machine(m).install_time());
      ASSERT_EQ(first.machine(m).product().name, second.machine(m).product().name);
    }
    // The planted defect populations must match core-for-core, spec-for-spec.
    for (uint64_t core_index : first.mercurial_cores()) {
      const auto& a = first.core(core_index).defects();
      const auto& b = second.core(core_index).defects();
      ASSERT_EQ(a.size(), b.size());
      for (size_t d = 0; d < a.size(); ++d) {
        EXPECT_EQ(a[d].spec().label, b[d].spec().label);
        EXPECT_EQ(a[d].unit(), b[d].unit());
      }
    }
  }
}

// --- P7: shard partition covers every core exactly once ----------------------------------------

TEST(PropertyTest, PartitionCoresIsExactOrderedCover) {
  Rng rng(700);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t core_count = rng.UniformInt(0, 5000);
    const int shards = static_cast<int>(rng.UniformInt(1, 64));
    const auto ranges = PartitionCores(core_count, shards);
    ASSERT_EQ(ranges.size(), static_cast<size_t>(shards));
    uint64_t expected_begin = 0;
    for (const ShardRange& range : ranges) {
      ASSERT_EQ(range.begin, expected_begin) << "gap or overlap at shard boundary";
      ASSERT_LE(range.begin, range.end);
      expected_begin = range.end;
    }
    ASSERT_EQ(expected_begin, core_count) << "partition must cover all cores";
  }
}

// --- P8: metric-registry merge associativity ---------------------------------------------------

namespace {

// One random metric event applied identically to a shard delta and the serial reference.
void EmitRandomMetricEvent(Rng& rng, MetricRegistry& target, MetricRegistry& reference) {
  static const char* kCounters[] = {"signals.crash", "signals.app_report", "corruption.silent"};
  static const char* kSeries[] = {"incidents.user_reported", "incidents.auto_reported"};
  switch (rng.UniformInt(0, 2)) {
    case 0: {
      const char* name = kCounters[rng.UniformInt(0, 2)];
      const uint64_t delta = 1 + rng.UniformInt(0, 4);
      target.Increment(name, delta);
      reference.Increment(name, delta);
      break;
    }
    case 1: {
      const char* name = kSeries[rng.UniformInt(0, 1)];
      const SimTime when = SimTime::Days(static_cast<int64_t>(rng.UniformInt(0, 400)));
      target.Series(name).Add(when, 1.0);
      reference.Series(name).Add(when, 1.0);
      break;
    }
    case 2: {
      // Integer-valued samples keep sum/sum_squares exact under any grouping, so the exact
      // equality below tests merge logic, not floating-point reassociation.
      const double value = static_cast<double>(rng.UniformInt(0, 99));
      target.Histo("latency", 0.0, 100.0, 20).Add(value);
      reference.Histo("latency", 0.0, 100.0, 20).Add(value);
      break;
    }
  }
}

void ExpectRegistriesEqual(const MetricRegistry& a, const MetricRegistry& b) {
  ASSERT_EQ(a.counters(), b.counters());
  for (const char* name : {"incidents.user_reported", "incidents.auto_reported"}) {
    const TimeSeries* sa = a.FindSeries(name);
    const TimeSeries* sb = b.FindSeries(name);
    ASSERT_EQ(sa == nullptr, sb == nullptr) << name;
    if (sa == nullptr) {
      continue;
    }
    ASSERT_EQ(sa->bucket_count(), sb->bucket_count()) << name;
    for (size_t i = 0; i < sa->bucket_count(); ++i) {
      ASSERT_EQ(sa->bucket_sum(i), sb->bucket_sum(i)) << name << " bucket " << i;
      ASSERT_EQ(sa->bucket_samples(i), sb->bucket_samples(i)) << name << " bucket " << i;
    }
  }
  const Histogram* ha = a.FindHisto("latency");
  const Histogram* hb = b.FindHisto("latency");
  ASSERT_EQ(ha == nullptr, hb == nullptr);
  if (ha != nullptr) {
    ASSERT_EQ(ha->buckets(), hb->buckets());
    ASSERT_EQ(ha->count(), hb->count());
    ASSERT_EQ(ha->sum(), hb->sum());
  }
}

}  // namespace

TEST(PropertyTest, MetricRegistryMergeInShardOrderEqualsSerialAccumulation) {
  Rng rng(800);
  for (int trial = 0; trial < 20; ++trial) {
    const int shards = 1 + static_cast<int>(rng.UniformInt(0, 7));
    // The serial reference sees every event in shard order; each shard delta sees only its
    // own slice. Folding deltas in shard order must reproduce the reference exactly.
    MetricRegistry reference;
    std::vector<MetricRegistry> deltas(static_cast<size_t>(shards));
    for (MetricRegistry& delta : deltas) {
      const uint64_t events = rng.UniformInt(0, 50);
      for (uint64_t e = 0; e < events; ++e) {
        EmitRandomMetricEvent(rng, delta, reference);
      }
    }
    MetricRegistry merged;
    for (const MetricRegistry& delta : deltas) {
      merged.Merge(delta);
    }
    ExpectRegistriesEqual(merged, reference);

    // Associativity: pre-merging a prefix then merging the rest gives the same result.
    MetricRegistry left_fold;
    MetricRegistry prefix;
    for (int k = 0; k < shards; ++k) {
      (k < shards / 2 ? prefix : left_fold).Merge(deltas[static_cast<size_t>(k)]);
    }
    MetricRegistry regrouped;
    regrouped.Merge(prefix);
    regrouped.Merge(left_fold);
    ExpectRegistriesEqual(regrouped, reference);
  }
}

// --- P9/P10/P11: incident flight-recorder lifecycle properties ---------------------------------

namespace {

// A traced study exercising the full lifecycle: chaos keeps the control plane retrying and
// force-releasing, auditing makes convictions spawn repair events, and the fleet is mercurial
// enough that convictions actually happen.
StudyOptions TracedLifecycleOptions() {
  StudyOptions options;
  options.seed = 20210531;
  options.fleet.machine_count = 80;
  options.fleet.mercurial_rate_multiplier = 150.0;
  options.workload.payload_bytes = 256;
  options.work_units_per_core_day = 20;
  options.duration = SimTime::Days(100);
  options.screening.offline_period = SimTime::Days(25);
  options.shards = 8;
  options.threads = 2;
  options.control_plane.max_pending = 64;
  options.control_plane.max_retries = 3;
  options.control_plane.retry_backoff = SimTime::Days(1);
  options.control_plane.drain_latency = SimTime::Hours(12);
  options.control_plane.drain_timeout = SimTime::Days(4);
  options.control_plane.chaos.abort_interrogation = 0.30;
  options.control_plane.chaos.machine_restart_per_day = 0.20;
  options.audit.enabled = true;
  options.audit.repair_budget_per_tick = 256;
  options.trace.enabled = true;
  return options;
}

// First-occurrence time of `kind` in `events`, or nullopt-like (-1, false).
bool FirstTime(const std::vector<TraceEvent>& events, TraceEventKind kind, int64_t* out) {
  for (const TraceEvent& event : events) {
    if (event.kind == kind) {
      *out = event.time_seconds;
      return true;
    }
  }
  return false;
}

bool IsRepairKind(TraceEventKind kind) {
  return kind == TraceEventKind::kRepairPass || kind == TraceEventKind::kRepairRetry ||
         kind == TraceEventKind::kRepairShed;
}

}  // namespace

// P9: every convicted core's cause chain is complete (suspicion -> admission ->
// interrogation -> verdict -> conviction, all present) and monotone in time, repair events
// never precede the conviction, and the first defect fire never postdates the first
// defect-driven signal.
TEST(PropertyTest, ConvictedCoreCauseChainIsCompleteAndMonotone) {
  FleetStudy study(TracedLifecycleOptions());
  const StudyReport report = study.Run();
  const TraceQuery query(report.trace);
  const std::vector<uint64_t> convicted = query.ConvictedCores();
  ASSERT_GT(convicted.size(), 0u) << "harness produced no convictions; properties are vacuous";

  for (const uint64_t core : convicted) {
    SCOPED_TRACE("core " + std::to_string(core));
    const std::vector<TraceEvent> chain = query.CauseChain(core);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back().kind, TraceEventKind::kConviction);

    // Monotone timestamps along the chain (the assembled trace is time-ordered).
    for (size_t i = 1; i < chain.size(); ++i) {
      ASSERT_LE(chain[i - 1].time_seconds, chain[i].time_seconds) << "event " << i;
    }

    // Completeness: the pipeline stages all appear, in first-occurrence order.
    const TraceEventKind stages[] = {
        TraceEventKind::kSuspicionRaised, TraceEventKind::kQuarantineAdmit,
        TraceEventKind::kInterrogationStart, TraceEventKind::kInterrogationVerdict,
        TraceEventKind::kConviction};
    int64_t previous = 0;
    bool have_previous = false;
    for (const TraceEventKind stage : stages) {
      int64_t first = 0;
      ASSERT_TRUE(FirstTime(chain, stage, &first))
          << "missing stage " << TraceEventKindName(stage);
      if (have_previous) {
        EXPECT_LE(previous, first) << "stage " << TraceEventKindName(stage)
                                   << " precedes its predecessor";
      }
      previous = first;
      have_previous = true;
    }

    // Defect fires (when recorded — a false-positive conviction has none) precede the first
    // defect-driven signal. Background noise is excluded: it is software, not the defect.
    int64_t first_fire = 0;
    if (FirstTime(chain, TraceEventKind::kDefectFired, &first_fire)) {
      for (const TraceEvent& event : chain) {
        if (event.kind == TraceEventKind::kSignalEmitted &&
            event.cause != TraceCause::kBackgroundNoise) {
          EXPECT_LE(first_fire, event.time_seconds) << "signal before any defect fire";
          break;
        }
      }
    }

    // Repair strictly follows conviction (tasks exist only post-conviction).
    const int64_t conviction_time = chain.back().time_seconds;
    for (const TraceEvent& event : query.CoreTimeline(core)) {
      if (IsRepairKind(event.kind)) {
        EXPECT_GE(event.time_seconds, conviction_time)
            << TraceEventKindName(event.kind) << " before conviction";
      }
    }
  }
}

// P10: quarantine admission books balance. Per core, admissions exceed terminal events
// (verdict or force-release) by at most one — the admission still pending at study end — and
// the fleet-wide deficit is exactly the control plane's pending_at_end count.
TEST(PropertyTest, EveryQuarantineAdmissionHasExactlyOneTerminalEvent) {
  FleetStudy study(TracedLifecycleOptions());
  const StudyReport report = study.Run();
  ASSERT_GT(report.trace.events.size(), 0u);

  std::map<uint64_t, int64_t> admits;
  std::map<uint64_t, int64_t> terminals;
  for (const TraceEvent& event : report.trace.events) {
    if (event.kind == TraceEventKind::kQuarantineAdmit) {
      ++admits[event.core];
    } else if (event.kind == TraceEventKind::kInterrogationVerdict ||
               event.kind == TraceEventKind::kQuarantineForceRelease) {
      ++terminals[event.core];
    }
  }
  ASSERT_FALSE(admits.empty()) << "harness admitted nothing; property is vacuous";

  uint64_t deficit_total = 0;
  for (const auto& [core, admitted] : admits) {
    const int64_t closed = terminals.count(core) ? terminals.at(core) : 0;
    const int64_t deficit = admitted - closed;
    EXPECT_GE(deficit, 0) << "core " << core << " closed more admissions than it had";
    EXPECT_LE(deficit, 1) << "core " << core << " has multiple unterminated admissions";
    deficit_total += static_cast<uint64_t>(deficit);
  }
  for (const auto& [core, closed] : terminals) {
    EXPECT_TRUE(admits.count(core)) << "core " << core << " terminated without admission";
  }
  EXPECT_EQ(deficit_total, report.control_plane.pending_at_end);
}

// P11: conservation under adversarially tiny ring capacities and aggressive sampling. Drops
// and sampling must both actually occur (otherwise the accounting is untested), and
// dropped + recorded == emitted must hold exactly.
TEST(PropertyTest, TraceAccountingConservesEventsUnderTinyCapacities) {
  for (const size_t capacity : {size_t{4}, size_t{64}}) {
    StudyOptions options = TracedLifecycleOptions();
    options.trace.ring_capacity = capacity;
    options.trace.sample_every[static_cast<size_t>(TraceEventKind::kDefectFired)] = 7;
    options.trace.sample_every[static_cast<size_t>(TraceEventKind::kSignalEmitted)] = 3;
    SCOPED_TRACE("ring_capacity=" + std::to_string(capacity));
    FleetStudy study(options);
    const StudyReport report = study.Run();
    const TraceCounters& counters = report.trace.counters;
    EXPECT_EQ(counters.events_recorded + counters.events_dropped, counters.events_emitted);
    if (capacity == 4) {
      // Only the smallest rings are guaranteed to wrap; the larger capacity exists to show
      // conservation holds whether or not the overwrite path fires.
      EXPECT_GT(counters.events_dropped, 0u) << "rings never wrapped; drop path untested";
    }
    EXPECT_GT(counters.events_sampled_out, 0u) << "sampling never engaged";
    EXPECT_EQ(report.trace.events.size(), counters.events_recorded);
    EXPECT_LE(report.trace.events.size(),
              capacity * static_cast<size_t>(report.trace.shards));
  }
}

// --- P12/P13/P14: quorum + probation lifecycle properties --------------------------------------

namespace {

// The traced lifecycle harness with the full verdict stack on: quorum interrogation, probation
// with reinstatement, and testimony chaos (lying witnesses, witness crashes, suppressed
// probation signals) so every lifecycle edge actually fires.
StudyOptions QuorumProbationLifecycleOptions() {
  StudyOptions options = TracedLifecycleOptions();
  options.fleet.mercurial_rate_multiplier = 400.0;  // more convictions => richer lifecycle
  options.control_plane.quorum.enabled = true;
  options.control_plane.quorum.witnesses = 3;
  options.control_plane.probation.enabled = true;
  options.control_plane.probation.window = SimTime::Days(2);
  options.control_plane.probation.clean_windows_to_reinstate = 2;
  // Convictions that needed a retry count as weak evidence — with 30% interrogation aborts
  // this keeps the probation path busy.
  options.control_plane.probation.weak_after_attempts = 1;
  options.control_plane.chaos.lying_witness = 0.20;
  options.control_plane.chaos.witness_crash = 0.15;
  options.control_plane.chaos.probation_suppress = 0.25;
  return options;
}

}  // namespace

// P12: every conviction is accounted for. Strong convictions retire immediately; weak ones
// open a probation record, and each record is closed by exactly one kProbationEnd or is still
// pending when the study ends.
TEST(PropertyTest, ConvictionLifecycleConservesProbationRecords) {
  FleetStudy study(QuorumProbationLifecycleOptions());
  const StudyReport report = study.Run();

  uint64_t convictions = 0;
  uint64_t strong_convictions = 0;
  uint64_t probation_starts = 0;
  uint64_t probation_ends = 0;
  uint64_t quorum_verdicts = 0;
  for (const TraceEvent& event : report.trace.events) {
    switch (event.kind) {
      case TraceEventKind::kConviction:
        ++convictions;
        if (event.cause != TraceCause::kWeakEvidence) {
          ++strong_convictions;
        }
        break;
      case TraceEventKind::kProbationStart:
        ++probation_starts;
        EXPECT_EQ(event.cause, TraceCause::kWeakEvidence);
        break;
      case TraceEventKind::kProbationEnd:
        ++probation_ends;
        EXPECT_TRUE(event.cause == TraceCause::kReinstated ||
                    event.cause == TraceCause::kProbationEscalated ||
                    event.cause == TraceCause::kProbationSignal)
            << "unexpected probation-end cause " << static_cast<int>(event.cause);
        break;
      case TraceEventKind::kQuorumVerdict:
        ++quorum_verdicts;
        break;
      default:
        break;
    }
  }
  ASSERT_GT(convictions, 0u) << "no convictions; conservation is vacuous";
  ASSERT_GT(probation_starts, 0u) << "no weak convictions; probation path untested";
  EXPECT_EQ(convictions,
            strong_convictions + probation_ends + report.control_plane.probation_pending_at_end);
  EXPECT_EQ(convictions - strong_convictions, probation_starts)
      << "every weak conviction opens exactly one probation record";
  EXPECT_EQ(quorum_verdicts, report.control_plane.quorum.judgments)
      << "every quorum judgment must be traced";
  EXPECT_GT(report.control_plane.quorum.judgments, 0u);
}

// P13: per-core probation books. A core can hold at most one open probation record, so starts
// minus ends is 0 or 1 per core, and the fleet-wide deficit is the control plane's pending
// count.
TEST(PropertyTest, ProbationBooksBalancePerCore) {
  FleetStudy study(QuorumProbationLifecycleOptions());
  const StudyReport report = study.Run();

  std::map<uint64_t, int64_t> starts;
  std::map<uint64_t, int64_t> ends;
  for (const TraceEvent& event : report.trace.events) {
    if (event.kind == TraceEventKind::kProbationStart) {
      ++starts[event.core];
    } else if (event.kind == TraceEventKind::kProbationEnd) {
      ++ends[event.core];
    }
  }
  ASSERT_FALSE(starts.empty()) << "no probation starts; books are vacuous";

  uint64_t deficit_total = 0;
  for (const auto& [core, started] : starts) {
    const int64_t closed = ends.count(core) ? ends.at(core) : 0;
    const int64_t deficit = started - closed;
    EXPECT_GE(deficit, 0) << "core " << core << " ended probation it never started";
    EXPECT_LE(deficit, 1) << "core " << core << " holds multiple open probation records";
    deficit_total += static_cast<uint64_t>(deficit);
  }
  for (const auto& [core, closed] : ends) {
    EXPECT_TRUE(starts.count(core)) << "core " << core << " ended probation without starting";
  }
  EXPECT_EQ(deficit_total, report.control_plane.probation_pending_at_end);
}

// P14: configuring quorum and probation without enabling them must be bit-invisible — the
// serialized trace and the headline counters are identical to an all-defaults run.
TEST(PropertyTest, DisabledQuorumAndProbationAreBitInvisible) {
  StudyOptions baseline = TracedLifecycleOptions();

  StudyOptions configured = TracedLifecycleOptions();
  configured.control_plane.quorum.witnesses = 9;
  configured.control_plane.quorum.witness_error_rate = 0.9;
  configured.control_plane.quorum.strong_agreement = 0.6;
  configured.control_plane.quorum.max_escalations = 4;
  configured.control_plane.probation.window = SimTime::Days(2);
  configured.control_plane.probation.clean_windows_to_reinstate = 7;
  configured.control_plane.probation.weak_after_attempts = 1;
  ASSERT_FALSE(configured.control_plane.quorum.enabled);
  ASSERT_FALSE(configured.control_plane.probation.enabled);

  FleetStudy study_a(baseline);
  const StudyReport report_a = study_a.Run();
  FleetStudy study_b(configured);
  const StudyReport report_b = study_b.Run();

  EXPECT_EQ(SerializeTrace(report_a.trace), SerializeTrace(report_b.trace))
      << "disabled quorum/probation options leaked into the trace";
  EXPECT_EQ(report_a.quarantine.retirements, report_b.quarantine.retirements);
  EXPECT_EQ(report_a.quarantine.confessions, report_b.quarantine.confessions);
  EXPECT_EQ(report_a.quarantine.probation_entries, 0u);
  EXPECT_EQ(report_b.quarantine.probation_entries, 0u);
  EXPECT_EQ(report_a.control_plane.quorum.judgments, 0u);
  EXPECT_EQ(report_b.control_plane.quorum.judgments, 0u);
  EXPECT_EQ(report_a.silent_corruptions, report_b.silent_corruptions);
  EXPECT_EQ(report_a.work_units_executed, report_b.work_units_executed);
}

TEST(PropertyTest, AbftCorrectionNeverWorsensHealthyResult) {
  SimCore core(1, Rng(500));
  Rng rng(501);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.UniformInt(0, 8);
    Matrix a(n, n);
    Matrix b(n, n);
    for (auto& v : a.data()) {
      v = rng.NextDouble() * 2 - 1;
    }
    for (auto& v : b.data()) {
      v = rng.NextDouble() * 2 - 1;
    }
    const AbftMatmulResult result = AbftMatmul(core, a, b);
    EXPECT_FALSE(result.corruption_detected);
    EXPECT_LT(result.product.MaxAbsDiff(Multiply(a, b)), 1e-9);
  }
}

// P15: wheel completeness. A sparse orchestrator and a dense twin — identical construction
// stream (same due stagger), identical per-(shard, tick) draw streams, twin fleets from the
// same options, and identical scheduler churn — must screen exactly the same cores at exactly
// the same ticks, in the same order, with the same outcomes. The drive interleaves the three
// reschedule sources the wheel must honor: the post-screen cadence, install-time parking
// (future installs), and guardrail ThrottleOffline deferrals.
TEST(PropertyTest, SparseWheelScreensExactlyTheDenseTicks) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 12;
  fleet_options.seed = 4242;
  fleet_options.mercurial_rate_multiplier = 300.0;
  fleet_options.install_spread = SimTime::Days(30);
  fleet_options.future_install_spread = SimTime::Days(45);  // install-tick parking exercised
  Fleet fleet_dense = Fleet::Build(fleet_options);
  Fleet fleet_sparse = Fleet::Build(fleet_options);
  const size_t cores = fleet_dense.core_count();

  ScreeningOptions screen_options;
  screen_options.offline_period = SimTime::Days(9);
  screen_options.offline_iterations = 64;  // keep the 120-tick drive cheap
  screen_options.online_enabled = false;   // the wheel indexes only the offline cadence

  CoreScheduler sched_dense(cores, SchedulerCosts{});
  CoreScheduler sched_sparse(cores, SchedulerCosts{});
  ScreeningOrchestrator dense(screen_options, cores, Rng(77));
  ScreeningOrchestrator sparse(screen_options, cores, Rng(77));

  const SimTime dt = SimTime::Days(1);
  const std::vector<ShardRange> ranges = PartitionCores(cores, 3);
  std::vector<std::pair<uint64_t, uint64_t>> spans;
  for (const ShardRange& range : ranges) {
    spans.emplace_back(range.begin, range.end);
  }
  sparse.EnableSparse(dt, spans);

  Rng churn(999);
  uint64_t total_screens = 0;
  uint64_t total_deferred = 0;
  for (int64_t t = 1; t <= 120; ++t) {
    const SimTime now = SimTime::Seconds(t * dt.seconds());
    fleet_dense.SetAges(now);
    fleet_sparse.SetAges(now);

    // Identical scheduler churn on both twins: the wheel must keep visiting unschedulable
    // cores (their cadence advances; the confession path owns them) and must tolerate
    // retirement (the core stays parked in the wheel, skipped forever).
    for (int j = 0; j < 3; ++j) {
      const uint64_t core = churn.UniformInt(0, cores - 1);
      switch (churn.UniformInt(0, 3)) {
        case 0:
          if (sched_dense.Schedulable(core)) {
            sched_dense.Drain(core);
            sched_dense.Quarantine(core);
            sched_sparse.Drain(core);
            sched_sparse.Quarantine(core);
          }
          break;
        case 1:
          if (sched_dense.state(core) == CoreState::kQuarantined) {
            sched_dense.Release(core);
            sched_sparse.Release(core);
          }
          break;
        case 2:
          if (sched_dense.state(core) == CoreState::kQuarantined) {
            sched_dense.Retire(core);
            sched_sparse.Retire(core);
          }
          break;
        default:
          break;
      }
    }

    for (size_t k = 0; k < ranges.size(); ++k) {
      Rng rng_dense(DeriveStreamSeed(123, k, static_cast<uint64_t>(t)));
      Rng rng_sparse(DeriveStreamSeed(123, k, static_cast<uint64_t>(t)));
      const ShardScreenOutcome out_dense = dense.TickShard(
          now, dt, ranges[k].begin, ranges[k].end, fleet_dense, sched_dense, rng_dense);
      const ShardScreenOutcome out_sparse = sparse.TickShard(
          now, dt, ranges[k].begin, ranges[k].end, fleet_sparse, sched_sparse, rng_sparse);
      ASSERT_EQ(out_dense.offline_drained, out_sparse.offline_drained)
          << "tick " << t << " shard " << k;
      ASSERT_EQ(out_dense.stats.offline_screens, out_sparse.stats.offline_screens);
      ASSERT_EQ(out_dense.stats.screen_failures, out_sparse.stats.screen_failures);
      ASSERT_EQ(out_dense.stats.ops_spent, out_sparse.stats.ops_spent);
      ASSERT_EQ(out_dense.failures.size(), out_sparse.failures.size());
      for (size_t i = 0; i < out_dense.failures.size(); ++i) {
        EXPECT_EQ(out_dense.failures[i].core_global, out_sparse.failures[i].core_global);
        EXPECT_EQ(out_dense.failures[i].type, out_sparse.failures[i].type);
      }
      total_screens += out_dense.stats.offline_screens;
      for (const uint64_t core : out_dense.offline_drained) {
        sched_dense.Drain(core);
        sched_dense.Release(core);
        sched_sparse.Drain(core);
        sched_sparse.Release(core);
      }
    }

    if (t % 10 == 0) {
      // Guardrail throttle: both twins must defer exactly the same screens (the sparse path
      // extracts the wheel window and re-checks the exact due times).
      const uint64_t deferred_dense = dense.ThrottleOffline(now, SimTime::Days(5));
      const uint64_t deferred_sparse = sparse.ThrottleOffline(now, SimTime::Days(5));
      ASSERT_EQ(deferred_dense, deferred_sparse) << "tick " << t;
      total_deferred += deferred_dense;
    }
  }
  EXPECT_GT(total_screens, 0u) << "drive never screened; the property is vacuous";
  EXPECT_GT(total_deferred, 0u) << "drive never deferred; throttle reschedules untested";
  const DueWheelStats wheel = sparse.wheel_stats();
  EXPECT_GE(wheel.scheduled, wheel.drained);
  EXPECT_GT(wheel.drained, 0u);
}

// P16: activation-queue exactness. Brute-force oracle per (tick, core): a mercurial core
// belongs to its shard's active slice iff now >= its activation (install + earliest onset,
// clamped to 0 for born-active defects) and it has not been retired. In particular no core
// with AnyDefectActive() may ever be missing — the index may only be early (one tick, on
// float round-trip), never late.
TEST(PropertyTest, ActiveIndexAdmitsExactlyTheOnsetWindow) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 30;
  fleet_options.seed = 7331;
  fleet_options.mercurial_rate_multiplier = 400.0;
  fleet_options.install_spread = SimTime::Days(60);
  fleet_options.future_install_spread = SimTime::Days(60);
  // Mostly-latent defects with onsets short enough to activate DURING the 150-tick drive
  // (the stock catalog spreads onsets over 3 years, which would leave admissions untested).
  CatalogOptions catalog;
  catalog.p_latent = 0.9;
  catalog.max_onset = SimTime::Days(100);
  fleet_options.catalog_override = catalog;
  Fleet fleet = Fleet::Build(fleet_options);
  ASSERT_GT(fleet.mercurial_cores().size(), 10u);

  const std::vector<ShardRange> ranges = PartitionCores(fleet.core_count(), 4);
  ActiveProductionIndex index;
  index.Build(fleet, ranges);

  const auto activation_of = [&fleet](uint64_t core) {
    const SimTime onset = fleet.core(core).EarliestDefectOnset();
    if (onset.seconds() <= 0) {
      return SimTime::Seconds(0);
    }
    return fleet.machine(fleet.core_id(core).machine).install_time() + onset;
  };

  Rng churn(55);
  std::unordered_set<uint64_t> retired;
  bool retired_while_pending = false;
  bool retired_while_admitted = false;
  uint64_t late_admissions = 0;
  const SimTime dt = SimTime::Days(1);
  for (int64_t t = 1; t <= 150; ++t) {
    const SimTime now = SimTime::Seconds(t * dt.seconds());
    fleet.SetAges(now);
    const uint64_t admitted_before = index.admitted_count();
    index.Advance(now);
    if (t > 1) {
      late_admissions += index.admitted_count() - admitted_before;
    }

    for (size_t k = 0; k < ranges.size(); ++k) {
      const std::vector<uint64_t>& slice = index.ActiveInShard(k);
      ASSERT_TRUE(std::is_sorted(slice.begin(), slice.end()));
      for (uint64_t core = ranges[k].begin; core < ranges[k].end; ++core) {
        const bool in_slice = std::binary_search(slice.begin(), slice.end(), core);
        if (!fleet.IsMercurial(core)) {
          ASSERT_FALSE(in_slice) << "healthy core " << core << " admitted";
          continue;
        }
        const bool expected =
            retired.count(core) == 0 && activation_of(core) <= now;
        ASSERT_EQ(in_slice, expected) << "tick " << t << " core " << core;
        if (retired.count(core) == 0 && fleet.core(core).AnyDefectActive()) {
          ASSERT_TRUE(in_slice) << "active defect missed at tick " << t << " core " << core;
        }
      }
    }

    // Retire a random not-yet-retired mercurial core every few ticks: sometimes already
    // admitted (slice removal), sometimes still latent (pending-side removal).
    if (t % 5 == 0) {
      const std::vector<uint64_t>& mercurial = fleet.mercurial_cores();
      const uint64_t pick =
          mercurial[churn.UniformInt(0, mercurial.size() - 1)];
      if (retired.insert(pick).second) {
        if (activation_of(pick) <= now) {
          retired_while_admitted = true;
        } else {
          retired_while_pending = true;
        }
        index.Retire(pick);
      }
    }
  }
  EXPECT_GT(late_admissions, 0u) << "every activation fired at t=1; onsets untested";
  EXPECT_TRUE(retired_while_admitted) << "no slice-side retirement exercised";
  EXPECT_TRUE(retired_while_pending) << "no pending-side retirement exercised";
  // Books: slice-side removals are counted; pending-side ones are suppressed at admission,
  // so the removal counter never exceeds the retirements actually issued.
  EXPECT_GT(index.retired_count(), 0u);
  EXPECT_LE(index.retired_count(), retired.size());
}

// --- P17/P18: crash-recovery conservation ------------------------------------------------------

namespace {

// The quorum + probation lifecycle harness with the write-ahead journal armed and the
// controller dying after every tick. Clean crashes: the journal survives intact.
StudyOptions CrashEveryTickLifecycleOptions() {
  StudyOptions options = QuorumProbationLifecycleOptions();
  options.durability.enabled = true;
  options.control_plane.chaos.controller_crash_every_ticks = 1;
  return options;
}

}  // namespace

// P17 (clean crashes): the lifecycle conservation of P12 and P13 holds verbatim through a
// controller that is killed and recovered from the journal after EVERY tick — the books are
// reconstructed exactly, so nothing is lost and nothing double-applied, including the repair
// pipeline riding on those verdicts.
TEST(PropertyTest, LifecycleBooksBalanceThroughCrashRecoveryEveryTick) {
  FleetStudy study(CrashEveryTickLifecycleOptions());
  const StudyReport report = study.Run();

  ASSERT_GT(report.durability.controller_crashes, 0u);
  ASSERT_EQ(report.durability.recoveries, report.durability.exact_recoveries)
      << "clean crashes must all recover exactly";

  // P12's fleet-wide conservation, re-run on the crashed-and-recovered trace.
  uint64_t convictions = 0;
  uint64_t strong_convictions = 0;
  uint64_t probation_starts = 0;
  uint64_t probation_ends = 0;
  for (const TraceEvent& event : report.trace.events) {
    switch (event.kind) {
      case TraceEventKind::kConviction:
        ++convictions;
        if (event.cause != TraceCause::kWeakEvidence) {
          ++strong_convictions;
        }
        break;
      case TraceEventKind::kProbationStart:
        ++probation_starts;
        break;
      case TraceEventKind::kProbationEnd:
        ++probation_ends;
        break;
      default:
        break;
    }
  }
  ASSERT_GT(convictions, 0u) << "no convictions; conservation is vacuous";
  ASSERT_GT(probation_starts, 0u) << "no weak convictions; probation path untested";
  EXPECT_EQ(convictions,
            strong_convictions + probation_ends + report.control_plane.probation_pending_at_end);
  EXPECT_EQ(convictions - strong_convictions, probation_starts);

  // P13's per-core probation books, same trace.
  std::map<uint64_t, int64_t> starts;
  std::map<uint64_t, int64_t> ends;
  for (const TraceEvent& event : report.trace.events) {
    if (event.kind == TraceEventKind::kProbationStart) {
      ++starts[event.core];
    } else if (event.kind == TraceEventKind::kProbationEnd) {
      ++ends[event.core];
    }
  }
  uint64_t deficit_total = 0;
  for (const auto& [core, started] : starts) {
    const int64_t closed = ends.count(core) ? ends.at(core) : 0;
    const int64_t deficit = started - closed;
    EXPECT_GE(deficit, 0) << "core " << core << " ended probation it never started";
    EXPECT_LE(deficit, 1) << "core " << core << " holds multiple open probation records";
    deficit_total += static_cast<uint64_t>(deficit);
  }
  EXPECT_EQ(deficit_total, report.control_plane.probation_pending_at_end);
}

// P17 (torn tails): crashes that also damage the journal roll the books back by design. The
// property is loud accounting, not losslessness: every crash recovers (exactly or to a
// prefix), every truncated frame is counted, and the study's conservation CHECK
// (frames_replayed + frames_truncated == frames at risk) passes at finalization — reaching
// the assertions below at all proves it.
TEST(PropertyTest, TornTailCrashesAccountEveryLostFrame) {
  StudyOptions options = CrashEveryTickLifecycleOptions();
  options.durability.snapshot_every = 8;
  options.control_plane.chaos.controller_crash_every_ticks = 2;
  options.control_plane.chaos.journal_torn_tail = 0.5;
  options.control_plane.chaos.journal_bit_flip = 0.25;
  FleetStudy study(options);
  const StudyReport report = study.Run();

  ASSERT_GT(report.durability.controller_crashes, 0u);
  EXPECT_EQ(report.durability.recoveries, report.durability.controller_crashes);
  EXPECT_EQ(report.durability.exact_recoveries + report.durability.prefix_recoveries,
            report.durability.recoveries);
  EXPECT_GT(report.durability.prefix_recoveries, 0u) << "no journal damage landed; vacuous";
  EXPECT_GT(report.durability.frames_truncated, 0u);
  EXPECT_GT(report.durability.torn_tail_truncations + report.durability.corrupt_frames_rejected,
            0u);
}

// P18: every journal prefix is recoverable. A toy journal truncated at every byte boundary
// either recovers to some durable tick — with the unit state exactly as it was at that tick —
// or refuses loudly with DATA_LOSS (no valid header/snapshot yet). Nothing in between.
TEST(PropertyTest, EveryJournalPrefixRecoversCleanlyOrFailsLoudly) {
  struct ToyState {
    uint64_t value = 0;
  };

  // Build a reference journal: 6 ticks, value = 100 + tick. expected[t] is the durable value
  // at tick t (expected[0] is the initial snapshot's state).
  std::vector<uint8_t> image;
  std::vector<uint64_t> expected = {100};
  {
    ToyState state{100};
    DurabilityManager writer(DurabilityManager::Options{});
    writer.RegisterUnit(
        "toy", [&state](ByteWriter& w) { w.PutU64(state.value); },
        [&state](ByteReader& r) { return r.GetU64(&state.value); });
    ASSERT_TRUE(writer.Start(0, {0x42}).ok());
    for (uint64_t tick = 1; tick <= 6; ++tick) {
      state.value = 100 + tick;
      writer.EndTick(tick);
      expected.push_back(state.value);
    }
    image = writer.buffer();
  }

  uint64_t recovered_count = 0;
  uint64_t refused_count = 0;
  for (size_t len = 0; len <= image.size(); ++len) {
    ToyState state{0};
    DurabilityManager reader(DurabilityManager::Options{});
    reader.RegisterUnit(
        "toy", [&state](ByteWriter& w) { w.PutU64(state.value); },
        [&state](ByteReader& r) { return r.GetU64(&state.value); });
    reader.ReplaceBuffer(std::vector<uint8_t>(image.begin(), image.begin() + len));
    StatusOr<DurabilityManager::RecoveryResult> result = reader.Recover();
    if (result.ok()) {
      ++recovered_count;
      ASSERT_LE(result->durable_tick, 6u) << "prefix len " << len;
      EXPECT_EQ(state.value, expected[result->durable_tick])
          << "prefix len " << len << " recovered tick " << result->durable_tick
          << " with the wrong state";
    } else {
      ++refused_count;
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
          << "prefix len " << len << ": " << result.status().ToString();
    }
  }
  // Short prefixes (no header or no snapshot yet) refuse; everything past the initial
  // snapshot recovers. Both arms must be exercised.
  EXPECT_GT(recovered_count, 0u);
  EXPECT_GT(refused_count, 0u);
  EXPECT_EQ(recovered_count + refused_count, image.size() + 1);
}

}  // namespace
}  // namespace mercurial
