// Determinism-equivalence harness for the sharded parallel fleet engine.
//
// The whole repro's credibility rests on seeded determinism (DESIGN.md; fleet.h's header
// contract), so the parallel engine is proven equivalent by test, not by assertion:
//
//   D1. Thread-count invariance: the same StudyOptions (shards fixed) produce a StudyReport
//       that is EXACTLY equal — every counter, every weekly bucket, every histogram bin,
//       every floating-point cost accumulator — at threads = 1, 2, and 8.
//   D2. Serial regression lock: two shards=1 runs with the same seed match exactly (the
//       pre-sharding serial contract; the shards=1 engine is the legacy draw order).
//   D3. Replays: a sharded study replayed with the same options matches itself (the sharded
//       engine is a pure function of StudyOptions).
//   D4. The thread knob is execution-only: thread pool sizes beyond the shard count are
//       clamped and still reproduce the shards-fixed result.
//   D5. Fast-path equivalence: the dispatch fast path (armed-defect caching, interned metric
//       handles, pooled shard deltas) produces a StudyReport EXACTLY equal to the reference
//       path — per op environment + FireProbability recomputation — across seeds, chaos
//       settings, and thread counts. This is the RNG-stream-neutrality obligation of the
//       hot-path overhaul (DESIGN.md, "Decision: hot-path caching must be RNG-stream
//       neutral").
//   D8. Golden traces: with the incident flight recorder on, the SERIALIZED trace — every
//       event, byte for byte — is identical across threads {1, 2, 8} for every combination of
//       chaos {off, high} x audit {on, off}; and tracing is an observer: enabling it leaves
//       every legacy StudyReport field bit-identical to a tracing-off run.
//   D9. Quorum + probation invariance: with quorum interrogation, probation/reinstatement, and
//       testimony chaos all armed, the report — including every quorum, probation, and verdict
//       chaos counter — stays bit-identical across threads {1, 2, 8}. All verdict machinery
//       runs in the serial phase on dedicated streams, so threads remain execution-only.
//   D10. Sparse-engine equivalence: the due-wheel + active-index sparse tick engine produces
//       a StudyReport (including trace bytes, quorum, audit, and probation fields) EXACTLY
//       equal to the dense reference oracle, across 3 seeds x chaos {off, high} x audit
//       {off, on} x threads {1, 2, 8}, plus the serial (shards = 1) engine. This is the
//       stream-neutrality obligation of the sparse overhaul (DESIGN.md, "Decision: sparsity
//       is free when streams are counter-keyed"): skipped cores draw nothing, so visiting
//       only due/active cores cannot shift any stream.
//   D11. Crash-recovery equivalence: with the write-ahead journal on and the controller
//       killed and recovered after every k-th tick (k in {1, 7, 64}), the report — including
//       serialized trace bytes — is EXACTLY equal to an uncrashed run, across threads
//       {1, 2, 8} x {sparse, dense} x chaos {off, high}. And durability itself is an
//       observer: enabled with no crash due, it is bit-invisible to every report field.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/fleet_study.h"
#include "src/sim/core.h"

namespace mercurial {
namespace {

StudyOptions HarnessOptions(int shards, int threads) {
  StudyOptions options;
  options.seed = 20210531;
  options.fleet.machine_count = 120;
  options.fleet.mercurial_rate_multiplier = 150.0;  // enough mercurial cores to exercise paths
  options.fleet.future_install_spread = SimTime::Days(60);  // fleet growth during the study
  options.workload.payload_bytes = 256;
  options.work_units_per_core_day = 20;
  options.duration = SimTime::Days(150);
  options.screening.offline_period = SimTime::Days(30);
  options.shards = shards;
  options.threads = threads;
  return options;
}

StudyReport RunStudy(const StudyOptions& options) {
  FleetStudy study(options);
  return study.Run();
}

// Full structural equality over StudyReport — the equivalence oracle. EXPECT_* on every field
// so a divergence names exactly what broke.
void ExpectReportsEqual(const StudyReport& a, const StudyReport& b) {
  EXPECT_EQ(a.machines, b.machines);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.true_mercurial_cores, b.true_mercurial_cores);

  // Fig. 1 weekly series: element-wise exact (doubles must be bit-identical, so == is right).
  ASSERT_EQ(a.weekly_user_rate.size(), b.weekly_user_rate.size());
  ASSERT_EQ(a.weekly_auto_rate.size(), b.weekly_auto_rate.size());
  for (size_t w = 0; w < a.weekly_user_rate.size(); ++w) {
    EXPECT_EQ(a.weekly_user_rate[w], b.weekly_user_rate[w]) << "user week " << w;
  }
  for (size_t w = 0; w < a.weekly_auto_rate.size(); ++w) {
    EXPECT_EQ(a.weekly_auto_rate[w], b.weekly_auto_rate[w]) << "auto week " << w;
  }

  for (int s = 0; s < kSymptomCount; ++s) {
    EXPECT_EQ(a.symptom_counts[s], b.symptom_counts[s])
        << "symptom " << SymptomName(static_cast<Symptom>(s));
  }
  EXPECT_EQ(a.work_units_executed, b.work_units_executed);
  EXPECT_EQ(a.silent_corruptions, b.silent_corruptions);

  // Quarantine stats, field by field.
  EXPECT_EQ(a.quarantine.suspects_processed, b.quarantine.suspects_processed);
  EXPECT_EQ(a.quarantine.confessions, b.quarantine.confessions);
  EXPECT_EQ(a.quarantine.releases, b.quarantine.releases);
  EXPECT_EQ(a.quarantine.retirements, b.quarantine.retirements);
  EXPECT_EQ(a.quarantine.recidivism_retirements, b.quarantine.recidivism_retirements);
  EXPECT_EQ(a.quarantine.interrogation_ops, b.quarantine.interrogation_ops);
  EXPECT_EQ(a.quarantine.true_positive_retirements, b.quarantine.true_positive_retirements);
  EXPECT_EQ(a.quarantine.false_positive_retirements, b.quarantine.false_positive_retirements);
  EXPECT_EQ(a.quarantine.missed_confessions, b.quarantine.missed_confessions);
  EXPECT_EQ(a.quarantine.probation_entries, b.quarantine.probation_entries);
  EXPECT_EQ(a.quarantine.probation_escalations, b.quarantine.probation_escalations);
  EXPECT_EQ(a.quarantine.reinstatements, b.quarantine.reinstatements);

  // Scheduler stats, including the floating-point cost accumulators (accumulated in a fixed
  // merge order, so exact equality is required, not approximate).
  EXPECT_EQ(a.scheduler.drains, b.scheduler.drains);
  EXPECT_EQ(a.scheduler.surprise_removals, b.scheduler.surprise_removals);
  EXPECT_EQ(a.scheduler.quarantines, b.scheduler.quarantines);
  EXPECT_EQ(a.scheduler.releases, b.scheduler.releases);
  EXPECT_EQ(a.scheduler.retirements, b.scheduler.retirements);
  EXPECT_EQ(a.scheduler.migration_cost_core_seconds, b.scheduler.migration_cost_core_seconds);
  EXPECT_EQ(a.scheduler.lost_work_core_seconds, b.scheduler.lost_work_core_seconds);
  EXPECT_EQ(a.scheduler.stranded_core_seconds, b.scheduler.stranded_core_seconds);
  EXPECT_EQ(a.scheduler.probations, b.scheduler.probations);
  EXPECT_EQ(a.scheduler.reinstatements, b.scheduler.reinstatements);
  EXPECT_EQ(a.scheduler.probation_core_seconds, b.scheduler.probation_core_seconds);
  for (int t = 0; t < kScreenRiskTierCount; ++t) {
    EXPECT_EQ(a.scheduler.screen_drains_by_tier[t], b.scheduler.screen_drains_by_tier[t])
        << "screen drains, risk tier " << t;
    EXPECT_EQ(a.scheduler.screen_migration_cost_by_tier[t],
              b.scheduler.screen_migration_cost_by_tier[t])
        << "screen migration cost, risk tier " << t;
  }

  // Control-plane pipeline accounting. screening_deferrals in particular is driven by the
  // guardrail's ThrottleOffline, whose sparse path rebuckets due-wheel entries — any
  // over/under-deferral in the wheel window extraction shows up here first.
  EXPECT_EQ(a.control_plane.suspects_admitted, b.control_plane.suspects_admitted);
  EXPECT_EQ(a.control_plane.suspects_shed, b.control_plane.suspects_shed);
  EXPECT_EQ(a.control_plane.queue_peak, b.control_plane.queue_peak);
  EXPECT_EQ(a.control_plane.retries_scheduled, b.control_plane.retries_scheduled);
  EXPECT_EQ(a.control_plane.retry_interrogations, b.control_plane.retry_interrogations);
  EXPECT_EQ(a.control_plane.drain_escalations, b.control_plane.drain_escalations);
  EXPECT_EQ(a.control_plane.guardrail_activations, b.control_plane.guardrail_activations);
  EXPECT_EQ(a.control_plane.guardrail_releases, b.control_plane.guardrail_releases);
  EXPECT_EQ(a.control_plane.screening_deferrals, b.control_plane.screening_deferrals);
  EXPECT_EQ(a.control_plane.restarts_reset, b.control_plane.restarts_reset);
  EXPECT_EQ(a.control_plane.peak_pending_isolation, b.control_plane.peak_pending_isolation);
  EXPECT_EQ(a.control_plane.pending_isolation_core_seconds,
            b.control_plane.pending_isolation_core_seconds);
  EXPECT_EQ(a.control_plane.pending_at_end, b.control_plane.pending_at_end);

  // Quorum verdicts, probation backlog, and testimony chaos: the untrusted-interrogator
  // machinery must also be execution-invariant.
  EXPECT_EQ(a.control_plane.quorum.judgments, b.control_plane.quorum.judgments);
  EXPECT_EQ(a.control_plane.quorum.votes_cast, b.control_plane.quorum.votes_cast);
  EXPECT_EQ(a.control_plane.quorum.splits, b.control_plane.quorum.splits);
  EXPECT_EQ(a.control_plane.quorum.escalations, b.control_plane.quorum.escalations);
  EXPECT_EQ(a.control_plane.quorum.fallbacks, b.control_plane.quorum.fallbacks);
  EXPECT_EQ(a.control_plane.quorum.overrides, b.control_plane.quorum.overrides);
  EXPECT_EQ(a.control_plane.probation_pending_at_end, b.control_plane.probation_pending_at_end);
  EXPECT_EQ(a.control_plane.chaos.witnesses_lied, b.control_plane.chaos.witnesses_lied);
  EXPECT_EQ(a.control_plane.chaos.witnesses_crashed, b.control_plane.chaos.witnesses_crashed);
  EXPECT_EQ(a.control_plane.chaos.probation_signals_suppressed,
            b.control_plane.chaos.probation_signals_suppressed);
  EXPECT_EQ(a.probation_work_declined, b.probation_work_declined);

  EXPECT_EQ(a.screen_failures, b.screen_failures);
  EXPECT_EQ(a.screening_ops, b.screening_ops);
  EXPECT_EQ(a.mercurial_retired, b.mercurial_retired);

  // Detection-latency histogram: every bucket, both tails, and the moment sums.
  ASSERT_EQ(a.detection_latency_days.buckets().size(), b.detection_latency_days.buckets().size());
  for (size_t i = 0; i < a.detection_latency_days.buckets().size(); ++i) {
    EXPECT_EQ(a.detection_latency_days.buckets()[i], b.detection_latency_days.buckets()[i])
        << "latency bucket " << i;
  }
  EXPECT_EQ(a.detection_latency_days.underflow(), b.detection_latency_days.underflow());
  EXPECT_EQ(a.detection_latency_days.overflow(), b.detection_latency_days.overflow());
  EXPECT_EQ(a.detection_latency_days.count(), b.detection_latency_days.count());
  EXPECT_EQ(a.detection_latency_days.sum(), b.detection_latency_days.sum());
  EXPECT_EQ(a.detection_latency_days.min(), b.detection_latency_days.min());
  EXPECT_EQ(a.detection_latency_days.max(), b.detection_latency_days.max());

  EXPECT_EQ(a.detected_per_thousand_machines, b.detected_per_thousand_machines);
  EXPECT_EQ(a.planted_per_thousand_machines, b.planted_per_thousand_machines);

  EXPECT_EQ(a.mca_recidivists, b.mca_recidivists);
  EXPECT_EQ(a.mca_true_mercurial, b.mca_true_mercurial);
  EXPECT_EQ(a.mca_unit_attribution_correct, b.mca_unit_attribution_correct);

  // Blast-radius audit + repair accounting, field by field (all zero when auditing is off, so
  // the same oracle serves audited and unaudited studies).
  EXPECT_EQ(a.audit_enabled, b.audit_enabled);
  EXPECT_EQ(a.artifacts_tagged, b.artifacts_tagged);
  EXPECT_EQ(a.corruptions_tagged, b.corruptions_tagged);
  EXPECT_EQ(a.repair.convictions, b.repair.convictions);
  EXPECT_EQ(a.repair.suspect_epochs, b.repair.suspect_epochs);
  EXPECT_EQ(a.repair.suspect_artifacts, b.repair.suspect_artifacts);
  EXPECT_EQ(a.repair.artifacts_reverified, b.repair.artifacts_reverified);
  EXPECT_EQ(a.repair.artifacts_reexecuted, b.repair.artifacts_reexecuted);
  EXPECT_EQ(a.repair.repair_ops, b.repair.repair_ops);
  EXPECT_EQ(a.repair.retries_scheduled, b.repair.retries_scheduled);
  EXPECT_EQ(a.repair.defective_executor_retries, b.repair.defective_executor_retries);
  EXPECT_EQ(a.repair.tasks_abandoned, b.repair.tasks_abandoned);
  EXPECT_EQ(a.repair.epochs_shed, b.repair.epochs_shed);
  EXPECT_EQ(a.repair.artifacts_shed, b.repair.artifacts_shed);
  EXPECT_EQ(a.repair.backlog_peak, b.repair.backlog_peak);
  EXPECT_EQ(a.repair.corruptions_found, b.repair.corruptions_found);
  EXPECT_EQ(a.repair.corruptions_repaired, b.repair.corruptions_repaired);
  EXPECT_EQ(a.repair.corruptions_shed, b.repair.corruptions_shed);
  EXPECT_EQ(a.repair.corruptions_missed, b.repair.corruptions_missed);
  EXPECT_EQ(a.repair.corruptions_abandoned, b.repair.corruptions_abandoned);
  EXPECT_EQ(a.repair.corruptions_still_at_rest, b.repair.corruptions_still_at_rest);
  EXPECT_EQ(a.repair.chaos.reverify_misses, b.repair.chaos.reverify_misses);
  EXPECT_EQ(a.repair.chaos.defective_repairs, b.repair.chaos.defective_repairs);
  EXPECT_EQ(a.repair.chaos.partial_repairs, b.repair.chaos.partial_repairs);

  // Durability + crash-recovery accounting (all-defaults when durability is off; D11 strips
  // it before comparing a crashed run against an uncrashed reference).
  EXPECT_EQ(a.durability.enabled, b.durability.enabled);
  EXPECT_EQ(a.durability.frames_written, b.durability.frames_written);
  EXPECT_EQ(a.durability.bytes_written, b.durability.bytes_written);
  EXPECT_EQ(a.durability.snapshots_written, b.durability.snapshots_written);
  EXPECT_EQ(a.durability.tick_frames_written, b.durability.tick_frames_written);
  EXPECT_EQ(a.durability.recoveries, b.durability.recoveries);
  EXPECT_EQ(a.durability.exact_recoveries, b.durability.exact_recoveries);
  EXPECT_EQ(a.durability.prefix_recoveries, b.durability.prefix_recoveries);
  EXPECT_EQ(a.durability.frames_replayed, b.durability.frames_replayed);
  EXPECT_EQ(a.durability.frames_truncated, b.durability.frames_truncated);
  EXPECT_EQ(a.durability.torn_tail_truncations, b.durability.torn_tail_truncations);
  EXPECT_EQ(a.durability.corrupt_frames_rejected, b.durability.corrupt_frames_rejected);
  EXPECT_EQ(a.durability.controller_crashes, b.durability.controller_crashes);
  EXPECT_EQ(a.durability.reconcile_released_unknown, b.durability.reconcile_released_unknown);
  EXPECT_EQ(a.durability.reconcile_reinstated_unknown,
            b.durability.reconcile_reinstated_unknown);
  EXPECT_EQ(a.durability.reconcile_dropped_pending, b.durability.reconcile_dropped_pending);
  EXPECT_EQ(a.durability.reconcile_dropped_probation, b.durability.reconcile_dropped_probation);
}

// Sanity: the harness options actually exercise the machinery (otherwise equality over empty
// reports would prove nothing).
TEST(DeterminismTest, HarnessOptionsExerciseTheStack) {
  const StudyReport report = RunStudy(HarnessOptions(/*shards=*/8, /*threads=*/2));
  EXPECT_GT(report.true_mercurial_cores, 0u);
  EXPECT_GT(report.work_units_executed, 0u);
  EXPECT_GT(report.screening_ops, 0u);
  uint64_t observable = 0;
  for (int s = 1; s < kSymptomCount; ++s) {
    observable += report.symptom_counts[s];
  }
  EXPECT_GT(observable, 0u);
}

// D1: bit-identical across threads = 1, 2, 8 with the shard count held fixed.
TEST(DeterminismTest, ReportIsThreadCountInvariant) {
  const StudyReport one = RunStudy(HarnessOptions(/*shards=*/8, /*threads=*/1));
  const StudyReport two = RunStudy(HarnessOptions(/*shards=*/8, /*threads=*/2));
  const StudyReport eight = RunStudy(HarnessOptions(/*shards=*/8, /*threads=*/8));
  {
    SCOPED_TRACE("threads=1 vs threads=2");
    ExpectReportsEqual(one, two);
  }
  {
    SCOPED_TRACE("threads=1 vs threads=8");
    ExpectReportsEqual(one, eight);
  }
}

// D2: regression lock for the serial contract — two shards=1 runs with one seed match.
TEST(DeterminismTest, SerialEngineIsSeedDeterministic) {
  const StudyReport first = RunStudy(HarnessOptions(/*shards=*/1, /*threads=*/1));
  const StudyReport second = RunStudy(HarnessOptions(/*shards=*/1, /*threads=*/1));
  ExpectReportsEqual(first, second);
}

// D3: the sharded engine is a pure function of StudyOptions.
TEST(DeterminismTest, ShardedEngineIsSeedDeterministic) {
  const StudyReport first = RunStudy(HarnessOptions(/*shards=*/8, /*threads=*/4));
  const StudyReport second = RunStudy(HarnessOptions(/*shards=*/8, /*threads=*/4));
  ExpectReportsEqual(first, second);
}

// D4: threads beyond the shard count clamp and cannot perturb results.
TEST(DeterminismTest, ExcessThreadsClampToShardCount) {
  const StudyReport ref = RunStudy(HarnessOptions(/*shards=*/4, /*threads=*/4));
  const StudyReport oversubscribed = RunStudy(HarnessOptions(/*shards=*/4, /*threads=*/64));
  ExpectReportsEqual(ref, oversubscribed);
}

// --- D5: fast-path equivalence ---------------------------------------------------------------

// Restores the process-wide fast-path default on scope exit. SimCore captures the flag at
// construction, so the value must be set before FleetStudy's constructor builds the fleet.
class ScopedFastPath {
 public:
  explicit ScopedFastPath(bool enabled) : previous_(DispatchFastPathEnabled()) {
    SetDispatchFastPath(enabled);
  }
  ~ScopedFastPath() { SetDispatchFastPath(previous_); }

 private:
  bool previous_;
};

// Smaller than HarnessOptions (the matrix below runs 8 studies per seed) but still exercising
// production symptoms, screening sweeps, quarantine, and — with `chaos` — the whole resilient
// control plane, whose retry/abort draws ride on interrogation batteries run through SimCore.
StudyOptions FastPathHarness(uint64_t seed, bool chaos, int threads) {
  StudyOptions options;
  options.seed = seed;
  options.fleet.seed = seed ^ 0x5eedf1ee7ull;
  options.fleet.machine_count = 80;
  options.fleet.mercurial_rate_multiplier = 150.0;
  options.workload.payload_bytes = 256;
  options.work_units_per_core_day = 20;
  options.duration = SimTime::Days(100);
  options.screening.offline_period = SimTime::Days(25);
  options.shards = 8;
  options.threads = threads;
  if (chaos) {
    options.control_plane.max_pending = 64;
    options.control_plane.max_retries = 3;
    options.control_plane.retry_backoff = SimTime::Days(1);
    options.control_plane.drain_latency = SimTime::Hours(12);
    options.control_plane.drain_timeout = SimTime::Days(4);
    options.control_plane.quarantine_budget_fraction = 0.25;
    options.control_plane.chaos.drop_report = 0.30;
    options.control_plane.chaos.duplicate_report = 0.20;
    options.control_plane.chaos.delay_report = 0.20;
    options.control_plane.chaos.abort_interrogation = 0.50;
    options.control_plane.chaos.machine_restart_per_day = 0.50;
  }
  return options;
}

void ExpectFastPathMatchesReference(bool chaos) {
  for (const uint64_t seed : {uint64_t{7}, uint64_t{20210531}, uint64_t{424242}}) {
    StudyReport reference;
    {
      ScopedFastPath off(false);
      reference = RunStudy(FastPathHarness(seed, chaos, /*threads=*/1));
    }
    for (const int threads : {1, 2, 8}) {
      ScopedFastPath on(true);
      SCOPED_TRACE("seed=" + std::to_string(seed) + " chaos=" + (chaos ? "high" : "off") +
                   " threads=" + std::to_string(threads));
      const StudyReport fast = RunStudy(FastPathHarness(seed, chaos, threads));
      ExpectReportsEqual(reference, fast);
    }
  }
}

// D5a: fast path on/off bit-identical for 3 seeds x threads {1, 2, 8}, chaos off.
TEST(DeterminismTest, FastPathMatchesReferencePath) {
  ExpectFastPathMatchesReference(/*chaos=*/false);
}

// D5b: same, with the chaos injector at the bench's "high" setting, so delayed/duplicated
// reports, aborted interrogations, and machine restarts all flow through the cached dispatch.
TEST(DeterminismTest, FastPathMatchesReferencePathUnderChaos) {
  ExpectFastPathMatchesReference(/*chaos=*/true);
}

// --- D6/D7: blast-radius audit determinism ---------------------------------------------------

// Audit-enabled harness: convictions happen (retries convert low-reproducibility defects), the
// repair budget is small enough that backlogs span ticks, and repair-path chaos is armed so
// the orchestrator's own RNG stream is exercised, not idle.
StudyOptions AuditHarness(int shards, int threads) {
  StudyOptions options = HarnessOptions(shards, threads);
  options.control_plane.max_retries = 2;
  options.control_plane.retry_backoff = SimTime::Days(1);
  options.audit.enabled = true;
  options.audit.repair_budget_per_tick = 256;
  options.audit.max_attempts = 3;
  options.audit.retry_backoff = SimTime::Days(1);
  options.audit.chaos.repair_fail_reverify = 0.02;
  options.audit.chaos.repair_on_defective = 0.10;
  options.audit.chaos.repair_partial = 0.10;
  return options;
}

// D6: with auditing + repair chaos on, the report (including every repair/escape counter) is
// bit-identical across thread counts — the ledger merges in shard order and the orchestrator
// runs serially on a dedicated stream, so threads stay execution-only.
TEST(DeterminismTest, AuditedReportIsThreadCountInvariant) {
  const StudyReport one = RunStudy(AuditHarness(/*shards=*/8, /*threads=*/1));
  const StudyReport two = RunStudy(AuditHarness(/*shards=*/8, /*threads=*/2));
  const StudyReport eight = RunStudy(AuditHarness(/*shards=*/8, /*threads=*/8));
  EXPECT_TRUE(one.audit_enabled);
  EXPECT_GT(one.artifacts_tagged, 0u);
  {
    SCOPED_TRACE("audited threads=1 vs threads=2");
    ExpectReportsEqual(one, two);
  }
  {
    SCOPED_TRACE("audited threads=1 vs threads=8");
    ExpectReportsEqual(one, eight);
  }
}

// D7: auditing is an observer. Turning it on must not change any legacy field of the report —
// the ledger taps existing events, the conviction hook rides existing verdicts, and the
// orchestrator draws only from its own Split stream. Serial and sharded engines both.
TEST(DeterminismTest, AuditIsBitInvisibleToLegacyReport) {
  for (const int shards : {1, 8}) {
    StudyOptions audited = AuditHarness(shards, /*threads=*/shards == 1 ? 1 : 2);
    StudyOptions plain = audited;
    plain.audit = RepairOptions{};  // disabled, all defaults
    SCOPED_TRACE("shards=" + std::to_string(shards));
    StudyReport on = RunStudy(audited);
    const StudyReport off = RunStudy(plain);
    EXPECT_TRUE(on.audit_enabled);
    EXPECT_FALSE(off.audit_enabled);
    EXPECT_GT(on.artifacts_tagged, 0u);
    // Strip the audit-only fields; everything that remains must match exactly.
    on.audit_enabled = false;
    on.artifacts_tagged = 0;
    on.corruptions_tagged = 0;
    on.repair = RepairStats{};
    ExpectReportsEqual(on, off);
  }
}

// --- D8: golden-trace determinism ------------------------------------------------------------

// Flight-recorder harness: the FastPathHarness matrix (whose chaos knobs exercise the whole
// resilient control plane) plus optional auditing, with tracing on. Shards stay fixed at 8 —
// the shard count is part of the experiment's identity; threads must be execution-only.
StudyOptions TraceHarness(bool chaos, bool audit, int threads) {
  StudyOptions options = FastPathHarness(/*seed=*/20210531, chaos, threads);
  if (audit) {
    options.audit.enabled = true;
    options.audit.repair_budget_per_tick = 256;
    options.audit.max_attempts = 3;
    options.audit.retry_backoff = SimTime::Days(1);
    options.audit.chaos.repair_fail_reverify = 0.02;
    options.audit.chaos.repair_on_defective = 0.10;
    options.audit.chaos.repair_partial = 0.10;
  }
  options.trace.enabled = true;
  return options;
}

// D8a: the assembled trace serializes to the same bytes at any thread count, for every
// chaos x audit combination. Byte equality of the CRC-framed codec output is the strongest
// equality there is: event order, stamps, causes, details, and conservation counters all
// included.
TEST(DeterminismTest, GoldenTraceIsThreadCountInvariant) {
  for (const bool chaos : {false, true}) {
    for (const bool audit : {false, true}) {
      SCOPED_TRACE(std::string("chaos=") + (chaos ? "high" : "off") +
                   " audit=" + (audit ? "on" : "off"));
      const StudyReport one = RunStudy(TraceHarness(chaos, audit, /*threads=*/1));
      const std::vector<uint8_t> golden = SerializeTrace(one.trace);
      ASSERT_GT(one.trace.events.size(), 0u) << "harness recorded no events";
      EXPECT_EQ(one.trace.counters.events_recorded + one.trace.counters.events_dropped,
                one.trace.counters.events_emitted);
      for (const int threads : {2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const StudyReport other = RunStudy(TraceHarness(chaos, audit, threads));
        EXPECT_EQ(golden, SerializeTrace(other.trace));
      }
    }
  }
}

// D8b: tracing is an observer. The recorder consumes no randomness and emission sits off the
// decision paths, so every legacy report field must be bit-identical with tracing on vs off —
// serial and sharded engines both.
TEST(DeterminismTest, TracingIsBitInvisibleToLegacyReport) {
  for (const int shards : {1, 8}) {
    StudyOptions traced = TraceHarness(/*chaos=*/true, /*audit=*/true,
                                       /*threads=*/shards == 1 ? 1 : 2);
    traced.shards = shards;
    StudyOptions plain = traced;
    plain.trace = TraceOptions{};  // disabled, all defaults
    SCOPED_TRACE("shards=" + std::to_string(shards));
    StudyReport on = RunStudy(traced);
    const StudyReport off = RunStudy(plain);
    EXPECT_GT(on.trace.events.size(), 0u);
    EXPECT_TRUE(off.trace.events.empty());
    // Strip the trace-only output; everything that remains must match exactly.
    on.trace = IncidentTrace{};
    ExpectReportsEqual(on, off);
  }
}

// --- D9: quorum + probation determinism ------------------------------------------------------

// The FastPathHarness matrix with the untrusted-interrogator stack armed: quorum witnesses,
// probation with reinstatement, and (in the chaos arm) lying witnesses, witness crashes, and
// suppressed probation signals.
StudyOptions QuorumHarness(bool chaos, int threads) {
  StudyOptions options = FastPathHarness(/*seed=*/20210531, chaos, threads);
  options.fleet.mercurial_rate_multiplier = 400.0;  // enough convictions to matter
  options.quarantine.recidivism_retire_after = 2;   // a chaos-free weak-evidence source
  options.control_plane.quorum.enabled = true;
  options.control_plane.quorum.witnesses = 3;
  options.control_plane.quorum.witness_error_rate = 0.30;
  options.control_plane.probation.enabled = true;
  options.control_plane.probation.window = SimTime::Days(5);
  options.control_plane.probation.clean_windows_to_reinstate = 2;
  options.control_plane.probation.weak_after_attempts = 1;
  if (chaos) {
    options.control_plane.chaos.lying_witness = 0.15;
    options.control_plane.chaos.witness_crash = 0.10;
    options.control_plane.chaos.probation_suppress = 0.25;
  }
  return options;
}

// D9: quorum verdicts, probation windows, and reinstatement all happen in the serial phase on
// dedicated Split streams, so the full report is bit-identical across thread counts whether
// testimony chaos is off or high.
TEST(DeterminismTest, QuorumProbationReportIsThreadCountInvariant) {
  for (const bool chaos : {false, true}) {
    SCOPED_TRACE(std::string("chaos=") + (chaos ? "high" : "off"));
    const StudyReport one = RunStudy(QuorumHarness(chaos, /*threads=*/1));
    EXPECT_GT(one.control_plane.quorum.judgments, 0u)
        << "harness produced no quorum judgments; invariance is vacuous";
    EXPECT_GT(one.quarantine.probation_entries, 0u)
        << "harness produced no probation entries; invariance is vacuous";
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const StudyReport other = RunStudy(QuorumHarness(chaos, threads));
      ExpectReportsEqual(one, other);
    }
  }
}

// --- D10: sparse-engine equivalence ----------------------------------------------------------

// The widest harness in this file: fleet growth (install-time wheel reschedules), chaos
// (guardrail throttles -> wheel rebucketing), quorum + probation (reinstatement churn in the
// scanned set), recidivism retirement (index removals), optional audit, and tracing always on
// (byte-for-byte trace equality is the strongest oracle available).
StudyOptions SparseHarness(uint64_t seed, bool chaos, bool audit, bool sparse, int shards,
                           int threads) {
  StudyOptions options = FastPathHarness(seed, chaos, threads);
  options.fleet.future_install_spread = SimTime::Days(40);
  options.fleet.mercurial_rate_multiplier = 400.0;
  options.quarantine.recidivism_retire_after = 2;
  options.control_plane.quorum.enabled = true;
  options.control_plane.quorum.witnesses = 3;
  options.control_plane.quorum.witness_error_rate = 0.30;
  options.control_plane.probation.enabled = true;
  options.control_plane.probation.window = SimTime::Days(5);
  options.control_plane.probation.clean_windows_to_reinstate = 2;
  options.control_plane.probation.weak_after_attempts = 1;
  if (chaos) {
    options.control_plane.chaos.lying_witness = 0.15;
    options.control_plane.chaos.witness_crash = 0.10;
    options.control_plane.chaos.probation_suppress = 0.25;
    // Far tighter than FastPathHarness's 0.25: pending isolation peaks at ~3 cores on this
    // fleet, so the budget must round down to a single core for the guardrail to ever engage
    // and throttle offline screens — exercising the sparse path's due-wheel window extraction.
    options.control_plane.quarantine_budget_fraction = 0.0005;
  }
  if (audit) {
    options.audit.enabled = true;
    options.audit.repair_budget_per_tick = 256;
    options.audit.max_attempts = 3;
    options.audit.retry_backoff = SimTime::Days(1);
    options.audit.chaos.repair_fail_reverify = 0.02;
    options.audit.chaos.repair_on_defective = 0.10;
    options.audit.chaos.repair_partial = 0.10;
  }
  options.trace.enabled = true;
  options.sparse_engine = sparse;
  options.shards = shards;
  options.threads = threads;
  return options;
}

// D10a: sparse == dense, full matrix. The dense run (sparse_engine = false) is the reference
// oracle; the sparse engine must reproduce it bit-for-bit at every thread count.
TEST(DeterminismTest, SparseEngineMatchesDenseOracle) {
  for (const uint64_t seed : {uint64_t{7}, uint64_t{20210531}, uint64_t{424242}}) {
    for (const bool chaos : {false, true}) {
      for (const bool audit : {false, true}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) + " chaos=" + (chaos ? "high" : "off") +
                     " audit=" + (audit ? "on" : "off"));
        const StudyReport dense = RunStudy(
            SparseHarness(seed, chaos, audit, /*sparse=*/false, /*shards=*/8, /*threads=*/1));
        const std::vector<uint8_t> golden = SerializeTrace(dense.trace);
        ASSERT_GT(dense.trace.events.size(), 0u) << "harness recorded no events";
        for (const int threads : {1, 2, 8}) {
          SCOPED_TRACE("threads=" + std::to_string(threads));
          const StudyReport sparse = RunStudy(
              SparseHarness(seed, chaos, audit, /*sparse=*/true, /*shards=*/8, threads));
          ExpectReportsEqual(dense, sparse);
          EXPECT_EQ(golden, SerializeTrace(sparse.trace));
        }
      }
    }
  }
}

// D10b: the serial engine (shards = 1, legacy stream on rng_) sparsifies identically — the
// wheel and index do not depend on the counter-keyed streams, only on skipped visits being
// draw-free, which holds for the persistent serial stream too.
TEST(DeterminismTest, SparseSerialEngineMatchesDenseOracle) {
  for (const uint64_t seed : {uint64_t{7}, uint64_t{20210531}, uint64_t{424242}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const StudyReport dense = RunStudy(SparseHarness(seed, /*chaos=*/true, /*audit=*/true,
                                                     /*sparse=*/false, /*shards=*/1,
                                                     /*threads=*/1));
    const StudyReport sparse = RunStudy(SparseHarness(seed, /*chaos=*/true, /*audit=*/true,
                                                      /*sparse=*/true, /*shards=*/1,
                                                      /*threads=*/1));
    ExpectReportsEqual(dense, sparse);
    EXPECT_EQ(SerializeTrace(dense.trace), SerializeTrace(sparse.trace));
  }
}

// D10c: the harness actually exercises what the engine claims to sparsify — without
// retirements and fleet growth, D10a would pass vacuously on the hard cases.
TEST(DeterminismTest, SparseHarnessExercisesTheHardPaths) {
  const StudyReport report = RunStudy(SparseHarness(/*seed=*/20210531, /*chaos=*/true,
                                                    /*audit=*/true, /*sparse=*/true,
                                                    /*shards=*/8, /*threads=*/2));
  EXPECT_GT(report.quarantine.retirements, 0u) << "no index removals exercised";
  EXPECT_GT(report.quarantine.probation_entries, 0u) << "no probation churn exercised";
  EXPECT_GT(report.control_plane.screening_deferrals, 0u)
      << "no guardrail throttle -> wheel rebucketing exercised"
      << " peak_iso=" << report.control_plane.peak_pending_isolation
      << " activations=" << report.control_plane.guardrail_activations
      << " releases=" << report.control_plane.guardrail_releases
      << " cores=" << report.cores;
}

// --- D11: crash-recovery equivalence ---------------------------------------------------------

// The D10 harness (quorum + probation + audit + tracing, chaos optional) with the write-ahead
// journal on and the controller crashed-and-recovered after every k-th tick. Clean crashes
// only: the journal is intact, so every recovery must be exact and bit-identical.
StudyOptions CrashHarness(bool chaos, bool sparse, int threads, int crash_every) {
  StudyOptions options = SparseHarness(/*seed=*/20210531, chaos, /*audit=*/true, sparse,
                                       /*shards=*/8, threads);
  options.durability.enabled = true;
  options.control_plane.chaos.controller_crash_every_ticks = crash_every;
  return options;
}

// D11a: a controller that dies after every k-th tick and recovers from the journal finishes
// the study with EXACTLY the report — and the trace bytes — of a controller that never died,
// for every k x thread-count x engine x chaos combination. LoadDurableState must therefore
// round-trip every bit of controller state: one forgotten field diverges this matrix.
TEST(DeterminismTest, CrashedControllerRecoversBitIdentically) {
  for (const bool chaos : {false, true}) {
    for (const bool sparse : {false, true}) {
      SCOPED_TRACE(std::string("chaos=") + (chaos ? "high" : "off") +
                   " engine=" + (sparse ? "sparse" : "dense"));
      const StudyReport uncrashed = RunStudy(SparseHarness(
          /*seed=*/20210531, chaos, /*audit=*/true, sparse, /*shards=*/8, /*threads=*/1));
      const std::vector<uint8_t> golden = SerializeTrace(uncrashed.trace);
      ASSERT_GT(uncrashed.trace.events.size(), 0u) << "harness recorded no events";
      for (const int crash_every : {1, 7, 64}) {
        for (const int threads : {1, 2, 8}) {
          SCOPED_TRACE("crash_every=" + std::to_string(crash_every) +
                       " threads=" + std::to_string(threads));
          StudyReport crashed = RunStudy(CrashHarness(chaos, sparse, threads, crash_every));
          ASSERT_GT(crashed.durability.controller_crashes, 0u);
          EXPECT_EQ(crashed.durability.recoveries, crashed.durability.controller_crashes);
          EXPECT_EQ(crashed.durability.recoveries, crashed.durability.exact_recoveries)
              << "a clean crash must recover exactly";
          EXPECT_EQ(crashed.durability.frames_truncated, 0u);
          EXPECT_EQ(crashed.durability.reconcile_released_unknown +
                        crashed.durability.reconcile_reinstated_unknown +
                        crashed.durability.reconcile_dropped_pending +
                        crashed.durability.reconcile_dropped_probation,
                    0u)
              << "exact recovery must never need fleet reconciliation";
          EXPECT_EQ(golden, SerializeTrace(crashed.trace));
          // Strip the crash accounting; every simulation field must match the uncrashed run.
          crashed.durability = DurabilityStats{};
          ExpectReportsEqual(uncrashed, crashed);
        }
      }
    }
  }
}

// D11b: durability is an observer. Journaling consumes no randomness and the crash stream is
// stateless per tick, so enabling the journal with no crash due leaves every report field and
// every trace byte identical to a durability-off run — serial and sharded engines both.
TEST(DeterminismTest, DurabilityIsBitInvisibleWithoutCrashes) {
  for (const int shards : {1, 8}) {
    StudyOptions durable = SparseHarness(/*seed=*/20210531, /*chaos=*/true, /*audit=*/true,
                                         /*sparse=*/true, shards,
                                         /*threads=*/shards == 1 ? 1 : 2);
    durable.durability.enabled = true;
    StudyOptions plain = durable;
    plain.durability = DurabilityOptions{};  // disabled, all defaults
    SCOPED_TRACE("shards=" + std::to_string(shards));
    StudyReport on = RunStudy(durable);
    const StudyReport off = RunStudy(plain);
    EXPECT_TRUE(on.durability.enabled);
    EXPECT_FALSE(off.durability.enabled);
    EXPECT_GT(on.durability.frames_written, 0u);
    EXPECT_EQ(on.durability.recoveries, 0u);
    EXPECT_EQ(SerializeTrace(on.trace), SerializeTrace(off.trace));
    // Strip the journal accounting; everything that remains must match exactly.
    on.durability = DurabilityStats{};
    ExpectReportsEqual(on, off);
  }
}

// --- D12: risk-adaptive screening determinism -------------------------------------------------

// The D10 harness (fleet growth, quorum + probation churn, optional chaos, tracing on) with
// the risk-adaptive allocator armed under a budget tight enough that every tick defers work —
// the admission cutoff, the risk-scaled reschedules, and the tiered batteries all live on the
// determinism-critical path. The plan phase is serial in BOTH engines and scores in ascending
// core order, so threads must stay execution-only.
StudyOptions AdaptiveHarness(bool chaos, bool sparse, int threads) {
  StudyOptions options = SparseHarness(/*seed=*/20210531, chaos, /*audit=*/false, sparse,
                                       /*shards=*/8, threads);
  options.screening.adaptive = true;
  options.screening.budget_ops_per_day = 1'000'000;  // ~half the fleet's steady-state demand
  options.screening.adaptive_min_period = SimTime::Days(5);
  options.screening.adaptive_max_period = SimTime::Days(40);
  return options;
}

// D12a: adaptive reports — including the per-tier drain/migration-cost views and the trace
// bytes (plan-phase kRiskRescore events included) — are bit-identical across threads
// {1, 2, 8} x {sparse, dense} x chaos {off, high}.
TEST(DeterminismTest, AdaptiveScreeningReportIsThreadCountInvariant) {
  for (const bool chaos : {false, true}) {
    for (const bool sparse : {false, true}) {
      SCOPED_TRACE(std::string("chaos=") + (chaos ? "high" : "off") +
                   " engine=" + (sparse ? "sparse" : "dense"));
      const StudyReport one = RunStudy(AdaptiveHarness(chaos, sparse, /*threads=*/1));
      const std::vector<uint8_t> golden = SerializeTrace(one.trace);
      ASSERT_GT(one.trace.events.size(), 0u) << "harness recorded no events";
      for (const int threads : {2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const StudyReport other = RunStudy(AdaptiveHarness(chaos, sparse, threads));
        ExpectReportsEqual(one, other);
        EXPECT_EQ(golden, SerializeTrace(other.trace));
      }
    }
  }
}

// D12b: the harness actually exercises budget pressure and the tier machinery — without
// deferrals and tiered admissions, D12a would pass vacuously.
TEST(DeterminismTest, AdaptiveHarnessExercisesBudgetPressure) {
  FleetStudy study(AdaptiveHarness(/*chaos=*/false, /*sparse=*/true, /*threads=*/2));
  const StudyReport report = study.Run();
  EXPECT_GT(study.metrics().counter("screening.risk_admitted"), 0u);
  EXPECT_GT(study.metrics().counter("screening.risk_deferred"), 0u)
      << "budget never bound; the admission cutoff went unexercised";
  uint64_t tier_drains = 0;
  for (int t = 0; t < kScreenRiskTierCount; ++t) {
    tier_drains += report.scheduler.screen_drains_by_tier[t];
  }
  EXPECT_GT(tier_drains, 0u) << "no tiered screens reached the scheduler";
  EXPECT_GT(report.screening_ops, 0u);
}

// D12c: adaptive = false is bit-invisible. Every new knob set to non-default values while the
// master switch stays off must leave the legacy report — trace bytes included — byte-for-byte
// identical to a run with pure default screening knobs: the allocator may not touch a single
// stream, counter, or schedule when disabled.
TEST(DeterminismTest, AdaptiveOffIsBitInvisibleToLegacyReport) {
  for (const int shards : {1, 8}) {
    StudyOptions knobbed = SparseHarness(/*seed=*/20210531, /*chaos=*/true, /*audit=*/false,
                                         /*sparse=*/true, shards,
                                         /*threads=*/shards == 1 ? 1 : 2);
    StudyOptions plain = knobbed;
    knobbed.screening.adaptive = false;  // master switch off; everything else cranked
    knobbed.screening.budget_ops_per_day = 123456;
    knobbed.screening.adaptive_min_period = SimTime::Days(3);
    knobbed.screening.adaptive_max_period = SimTime::Days(33);
    knobbed.screening.risk_warm = 0.5;
    knobbed.screening.risk_hot = 2.0;
    knobbed.screening.risk_weights.report_evidence = 9.0;
    knobbed.screening.risk_weights.coverage_gap = 9.0;
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const StudyReport on = RunStudy(knobbed);
    const StudyReport off = RunStudy(plain);
    ExpectReportsEqual(on, off);
    EXPECT_EQ(SerializeTrace(on.trace), SerializeTrace(off.trace));
    for (int t = 0; t < kScreenRiskTierCount; ++t) {
      EXPECT_EQ(off.scheduler.screen_drains_by_tier[t], 0u)
          << "legacy runs must never account tiered drains";
    }
  }
}

// --- Background-noise draw accounting (stream pin) -------------------------------------------

// EmitBackgroundNoiseShard's contract: the uniform core pick is drawn BEFORE the Installed
// check, and an uninstalled pick consumes exactly that one draw (the signal-type NextDouble
// is skipped). This test pins the contract by replaying the production/noise stream from
// first principles — same seed, salt, shard, tick — and demanding the study's traced noise
// signals match the replay event for event while fleet growth is thinning the noise. Any
// reordering of the pick draw, or any draw added/removed on the uninstalled path, diverges.
TEST(DeterminismTest, BackgroundNoiseDrawAccountingIsPinnedUnderFleetGrowth) {
  StudyOptions options;
  options.seed = 20210531;
  options.fleet.machine_count = 8;
  options.fleet.seed = 99;
  options.fleet.mercurial_rate_multiplier = 0.0;  // no mercurial cores: noise draws lead
  // Most machines install DURING the study, so uninstalled picks (the one-draw skip path
  // under test) are common in the first half.
  options.fleet.install_spread = SimTime::Days(20);
  options.fleet.future_install_spread = SimTime::Days(60);
  options.duration = SimTime::Days(80);
  options.background_signal_rate_per_core_day = 0.02;
  options.shards = 2;
  options.threads = 1;
  options.trace.enabled = true;

  FleetStudy study(options);
  const Fleet& fleet = study.fleet();
  ASSERT_TRUE(fleet.mercurial_cores().empty())
      << "replay assumes the production pass consumes no draws before the noise pass";
  const StudyReport report = study.Run();

  // Replay the per-(shard, tick) production streams. With zero mercurial cores the noise
  // draws are the first draws on each stream. Install times are construction state, so the
  // study's own fleet serves as the replay's layout oracle.
  const std::vector<ShardRange> ranges = PartitionCores(fleet.core_count(), options.shards);
  struct NoiseEvent {
    int64_t time_seconds;
    uint64_t core;
    uint64_t type;
  };
  std::vector<NoiseEvent> expected;
  uint64_t skipped_uninstalled = 0;
  const int64_t ticks = options.duration.seconds() / options.tick.seconds();
  for (int64_t t = 0; t < ticks; ++t) {
    const SimTime now = SimTime::Seconds((t + 1) * options.tick.seconds());
    for (size_t k = 0; k < ranges.size(); ++k) {
      Rng rng(DeriveStreamSeed(options.seed ^ kProductionStreamSalt, k,
                               static_cast<uint64_t>(t)));
      const uint64_t span = ranges[k].end - ranges[k].begin;
      const double mean = static_cast<double>(span) *
                          options.background_signal_rate_per_core_day *
                          options.tick.days();
      const uint64_t events = rng.Poisson(mean);
      for (uint64_t e = 0; e < events; ++e) {
        const uint64_t core = ranges[k].begin + rng.UniformInt(0, span - 1);
        if (!fleet.Installed(core, now)) {
          ++skipped_uninstalled;  // exactly one draw consumed: the pick above
          continue;
        }
        const double draw = rng.NextDouble();
        uint64_t type = static_cast<uint64_t>(SignalType::kCrash);
        if (draw < 0.15) {
          type = static_cast<uint64_t>(SignalType::kSanitizer);
        } else if (draw < 0.30) {
          type = static_cast<uint64_t>(SignalType::kAppReport);
        }
        expected.push_back({now.seconds(), core, type});
      }
    }
  }
  ASSERT_GT(skipped_uninstalled, 0u) << "growth never thinned the noise; pin is vacuous";
  ASSERT_GT(expected.size(), 0u);

  std::vector<NoiseEvent> traced;
  for (const TraceEvent& event : report.trace.events) {
    if (event.kind == TraceEventKind::kSignalEmitted &&
        event.cause == TraceCause::kBackgroundNoise) {
      traced.push_back({event.time_seconds, event.core, event.detail});
    }
  }
  ASSERT_EQ(traced.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(traced[i].time_seconds, expected[i].time_seconds) << "event " << i;
    EXPECT_EQ(traced[i].core, expected[i].core) << "event " << i;
    EXPECT_EQ(traced[i].type, expected[i].type) << "event " << i;
  }
}

// Different seeds must (overwhelmingly) give different studies — guards against the harness
// comparing constants.
TEST(DeterminismTest, DifferentSeedsDiverge) {
  StudyOptions a = HarnessOptions(/*shards=*/8, /*threads=*/2);
  StudyOptions b = a;
  b.seed = a.seed + 1;
  b.fleet.seed = a.fleet.seed + 1;
  const StudyReport ra = RunStudy(a);
  const StudyReport rb = RunStudy(b);
  EXPECT_NE(ra.work_units_executed, rb.work_units_executed);
}

// The thread pool itself: every index runs exactly once, under any thread count.
TEST(DeterminismTest, ThreadPoolRunsEachIndexExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{3}, size_t{16}}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<uint32_t>> hits(kN);
    for (auto& h : hits) {
      h.store(0);
    }
    for (int batch = 0; batch < 3; ++batch) {
      pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    }
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 3u) << "threads=" << threads << " index " << i;
    }
  }
}

// ParallelForChunks: the chunked dispatch the sparse engine batches shards through must cover
// [0, n) exactly once with contiguous, non-overlapping ranges, for n above, equal to, and
// below the thread count — plus the n = 0 and single-thread degenerate cases.
TEST(DeterminismTest, ParallelForChunksCoversEveryIndexExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{3}, size_t{16}}) {
    ThreadPool pool(threads);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{16}, size_t{1000}}) {
      std::vector<std::atomic<uint32_t>> hits(n);
      for (auto& h : hits) {
        h.store(0);
      }
      std::atomic<uint32_t> chunks{0};
      pool.ParallelForChunks(n, [&](size_t begin, size_t end) {
        ASSERT_LT(begin, end) << "empty chunk dispatched";
        ASSERT_LE(end, n);
        chunks.fetch_add(1);
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u)
            << "threads=" << threads << " n=" << n << " index " << i;
      }
      // At most one chunk per worker (that is the whole point: O(threads) sync per batch),
      // and none at all for n = 0.
      EXPECT_LE(chunks.load(), static_cast<uint32_t>(std::min(n, pool.thread_count())));
      if (n == 0) {
        EXPECT_EQ(chunks.load(), 0u);
      }
    }
  }
}

}  // namespace
}  // namespace mercurial
