// Tests for src/sim: SimCore micro-ops, defect models, f/V/T surfaces, the defect catalog.

#include <bit>
#include <cmath>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/core.h"
#include "src/sim/defect_catalog.h"
#include "src/substrate/aes.h"

namespace mercurial {
namespace {

SimCore HealthyCore(uint64_t id = 1) { return SimCore(id, Rng(id)); }

DefectSpec AlwaysFire(ExecUnit unit, DefectEffect effect) {
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = effect;
  spec.fvt.base_rate = 1.0;
  spec.machine_check_fraction = 0.0;
  return spec;
}

// --- Healthy core == golden ---------------------------------------------------------------

TEST(SimCoreTest, HealthyAluMatchesGolden) {
  SimCore core = HealthyCore();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.NextU64();
    const uint64_t b = rng.NextU64();
    EXPECT_EQ(core.Alu(AluOp::kAdd, a, b), a + b);
    EXPECT_EQ(core.Alu(AluOp::kSub, a, b), a - b);
    EXPECT_EQ(core.Alu(AluOp::kAnd, a, b), a & b);
    EXPECT_EQ(core.Alu(AluOp::kOr, a, b), a | b);
    EXPECT_EQ(core.Alu(AluOp::kXor, a, b), a ^ b);
    EXPECT_EQ(core.Alu(AluOp::kShl, a, b), a << (b & 63));
    EXPECT_EQ(core.Alu(AluOp::kShr, a, b), a >> (b & 63));
    EXPECT_EQ(core.Alu(AluOp::kRotl, a, b), std::rotl(a, static_cast<int>(b & 63)));
  }
}

TEST(SimCoreTest, HealthyMulDivLoadStore) {
  SimCore core = HealthyCore();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const uint64_t a = rng.NextU64();
    const uint64_t b = rng.NextU64() | 1;
    EXPECT_EQ(core.Mul(a, b), a * b);
    EXPECT_EQ(core.Div(a, b), a / b);
    EXPECT_EQ(core.Load(a), a);
    EXPECT_EQ(core.Store(b), b);
  }
}

TEST(SimCoreTest, DivByZeroRaisesMachineCheck) {
  SimCore core = HealthyCore();
  EXPECT_EQ(core.Div(5, 0), ~0ull);
  EXPECT_TRUE(core.TakePendingMachineCheck());
  EXPECT_FALSE(core.TakePendingMachineCheck()) << "pending flag must be consumed";
}

TEST(SimCoreTest, HealthyAesMatchesSubstrate) {
  SimCore core = HealthyCore();
  Rng rng(4);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  const AesKeySchedule golden = ExpandAesKey(key);
  const AesKeySchedule on_core = core.ExpandKey(key);
  for (int r = 0; r <= kAesRounds; ++r) {
    EXPECT_EQ(on_core.round_keys[r], golden.round_keys[r]);
  }
  AesBlock state;
  rng.FillBytes(state.data(), state.size());
  EXPECT_EQ(core.AesEnc(state, golden.round_keys[1], false),
            AesEncRound(state, golden.round_keys[1], false));
  EXPECT_EQ(core.AesDec(state, golden.round_keys[1], true),
            AesDecRound(state, golden.round_keys[1], true));
}

TEST(SimCoreTest, HealthyCopyAndCas) {
  SimCore core = HealthyCore();
  uint8_t src[37];
  uint8_t dst[37] = {};
  Rng rng(5);
  rng.FillBytes(src, sizeof(src));
  core.Copy(dst, src, sizeof(src));
  EXPECT_EQ(std::memcmp(src, dst, sizeof(src)), 0);

  uint64_t target = 7;
  EXPECT_TRUE(core.Cas(target, 7, 9));
  EXPECT_EQ(target, 9u);
  EXPECT_FALSE(core.Cas(target, 7, 11));
  EXPECT_EQ(target, 9u);
}

TEST(SimCoreTest, CountersTrackOps) {
  SimCore core = HealthyCore();
  core.Alu(AluOp::kAdd, 1, 2);
  core.Alu(AluOp::kXor, 1, 2);
  core.Mul(3, 4);
  core.Load(5);
  uint8_t buffer[16];
  core.Copy(buffer, buffer, 16);
  const CoreCounters& counters = core.counters();
  EXPECT_EQ(counters.ops_per_unit[static_cast<int>(ExecUnit::kIntAlu)], 2u);
  EXPECT_EQ(counters.ops_per_unit[static_cast<int>(ExecUnit::kIntMul)], 1u);
  EXPECT_EQ(counters.ops_per_unit[static_cast<int>(ExecUnit::kLoad)], 1u);
  EXPECT_EQ(counters.ops_per_unit[static_cast<int>(ExecUnit::kCopy)], 2u);
  EXPECT_EQ(counters.TotalOps(), 6u);
  core.ResetCounters();
  EXPECT_EQ(core.counters().TotalOps(), 0u);
}

// --- Defect gating -------------------------------------------------------------------------

TEST(DefectTest, BitFlipCorruptsExactBit) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.bit_index = 5;
  core.AddDefect(spec);
  const uint64_t got = core.Alu(AluOp::kAdd, 100, 200);
  EXPECT_EQ(got, 300ull ^ (1ull << 5));
  EXPECT_EQ(core.counters().corruptions, 1u);
}

TEST(DefectTest, StuckSetAndClear) {
  {
    SimCore core = HealthyCore();
    DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kStuckSet);
    spec.bit_index = 0;
    core.AddDefect(spec);
    EXPECT_EQ(core.Alu(AluOp::kAdd, 2, 2), 5u);  // bit 0 forced on
    EXPECT_EQ(core.Alu(AluOp::kAdd, 2, 3), 5u);  // already set: no visible change
  }
  {
    SimCore core = HealthyCore();
    DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kStuckClear);
    spec.bit_index = 0;
    core.AddDefect(spec);
    EXPECT_EQ(core.Alu(AluOp::kAdd, 2, 3), 4u);  // bit 0 forced off
  }
}

TEST(DefectTest, DefectOnlyAffectsItsUnit) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kVector, DefectEffect::kRandomWrong);
  core.AddDefect(spec);
  // Scalar ops are untouched.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(core.Alu(AluOp::kAdd, i, 1), static_cast<uint64_t>(i + 1));
    EXPECT_EQ(core.Load(static_cast<uint64_t>(i)), static_cast<uint64_t>(i));
  }
  // Vector ops are corrupted (kRandomWrong XORs a nonzero mask into lane 0 at minimum).
  const Vec128 got = core.Vector(VecOp::kXor, {1, 2}, {3, 4});
  EXPECT_FALSE(got == (Vec128{1 ^ 3, 2 ^ 4}));
}

TEST(DefectTest, OpcodeMaskFilters) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.bit_index = 0;
  spec.opcode_mask = 1ull << static_cast<int>(AluOp::kXor);  // only XOR is broken
  core.AddDefect(spec);
  EXPECT_EQ(core.Alu(AluOp::kAdd, 4, 4), 8u);
  EXPECT_EQ(core.Alu(AluOp::kXor, 4, 4), 1u);  // 0 with bit 0 flipped
}

TEST(DefectTest, DataTriggerOnlyFiresOnPattern) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kLoad, DefectEffect::kBitFlip);
  spec.bit_index = 3;
  spec.trigger.mask = 0xff;
  spec.trigger.value = 0x42;  // fires only when low byte of the loaded value is 0x42
  core.AddDefect(spec);
  EXPECT_EQ(core.Load(0x1100), 0x1100u);
  EXPECT_EQ(core.Load(0x42), 0x42u ^ (1u << 3));
  EXPECT_EQ(core.Load(0x1142), 0x1142u ^ (1u << 3));
  EXPECT_EQ(core.Load(0x43), 0x43u);
}

TEST(DefectTest, DeterministicWrongIsReproducible) {
  // "In just a few cases, we can reproduce the errors deterministically."
  SimCore core_a(1, Rng(111));
  SimCore core_b(1, Rng(222));  // different RNG stream, same defect
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kDeterministicWrong);
  spec.xor_mask = 0xdeadbeef;
  core_a.AddDefect(spec);
  core_b.AddDefect(spec);
  const uint64_t wrong_a = core_a.Alu(AluOp::kAdd, 1000, 2000);
  const uint64_t wrong_b = core_b.Alu(AluOp::kAdd, 1000, 2000);
  EXPECT_NE(wrong_a, 3000u);
  EXPECT_EQ(wrong_a, wrong_b) << "same operands must give the same wrong answer";
  // Different operands give a different corruption.
  EXPECT_NE(core_a.Alu(AluOp::kAdd, 1001, 2000), wrong_a + 1);
}

TEST(DefectTest, RandomWrongNeverIdentity) {
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kIntMul, DefectEffect::kRandomWrong));
  for (int i = 1; i < 100; ++i) {
    EXPECT_NE(core.Mul(i, 3), static_cast<uint64_t>(i) * 3)
        << "kRandomWrong must actually change the result";
  }
}

TEST(DefectTest, CasDropStoreViolatesLockSemantics) {
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kAtomic, DefectEffect::kCasDropStore));
  uint64_t target = 5;
  EXPECT_TRUE(core.Cas(target, 5, 6)) << "CAS claims success";
  EXPECT_EQ(target, 5u) << "...but the store was dropped";
  EXPECT_EQ(core.counters().corruptions, 1u);
}

TEST(DefectTest, CasPhantomStoreWritesOnFailure) {
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kAtomic, DefectEffect::kCasPhantomStore));
  uint64_t target = 5;
  EXPECT_FALSE(core.Cas(target, 99, 6)) << "CAS reports failure";
  EXPECT_EQ(target, 6u) << "...but memory was clobbered";
}

TEST(DefectTest, SelfInvertingAesKeySchedule) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kAes, DefectEffect::kRconCorrupt);
  spec.opcode_mask = 1ull << kAesOpRcon;
  spec.xor_mask = 0x10;
  core.AddDefect(spec);

  uint8_t key[16] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6};
  const AesKeySchedule bad = core.ExpandKey(key);
  const AesKeySchedule good = ExpandAesKey(key);
  EXPECT_NE(bad.round_keys[10], good.round_keys[10]);
  // Deterministic: expanding again gives the same wrong schedule.
  const AesKeySchedule bad2 = core.ExpandKey(key);
  EXPECT_EQ(bad.round_keys[10], bad2.round_keys[10]);
  // Self-inverting: enc then dec with the wrong schedule is the identity...
  AesBlock block = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 121, 98, 76};
  EXPECT_EQ(AesDecryptBlock(bad, AesEncryptBlock(bad, block)), block);
  // ...but decryption elsewhere (with the correct schedule) yields gibberish.
  EXPECT_NE(AesDecryptBlock(good, AesEncryptBlock(bad, block)), block);
}

TEST(DefectTest, MachineCheckEscalation) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.machine_check_fraction = 1.0;  // every firing escalates
  core.AddDefect(spec);
  const uint64_t got = core.Alu(AluOp::kAdd, 1, 1);
  EXPECT_EQ(got, 2u) << "escalated firings do not corrupt the result";
  EXPECT_TRUE(core.TakePendingMachineCheck());
  EXPECT_EQ(core.counters().machine_checks, 1u);
  EXPECT_EQ(core.counters().corruptions, 0u);
}

TEST(DefectTest, ProbabilisticFiringRate) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 0.1;
  core.AddDefect(spec);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    core.Alu(AluOp::kAdd, 1, 1);
  }
  const double rate = static_cast<double>(core.counters().corruptions) / n;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

// --- f/V/T surfaces ------------------------------------------------------------------------

TEST(FvtTest, DvfsCurveInterpolatesAndClamps) {
  const DvfsCurve curve{1.0, 3.0, 0.6, 1.0};
  EXPECT_DOUBLE_EQ(curve.VoltageAt(1.0), 0.6);
  EXPECT_DOUBLE_EQ(curve.VoltageAt(3.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.VoltageAt(2.0), 0.8);
  EXPECT_DOUBLE_EQ(curve.VoltageAt(0.5), 0.6);
  EXPECT_DOUBLE_EQ(curve.VoltageAt(9.0), 1.0);
}

TEST(FvtTest, FrequencySensitiveDefectFiresMoreAtHighClock) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-4;
  spec.fvt.freq_slope = 3.0;
  const Defect defect(spec);
  Environment low{OperatingPoint{1.5, 60.0}, 0.8, 1.0};
  Environment high{OperatingPoint{3.5, 60.0}, 0.8, 1.0};
  EXPECT_GT(defect.FireProbability(high), 5.0 * defect.FireProbability(low));
}

TEST(FvtTest, VoltageSensitiveDefectInverseFrequencyUnderDvfs) {
  // §5: "lower frequency sometimes (surprisingly) increases the failure rate". With DVFS,
  // low frequency means low voltage; a voltage-margin defect then fires MORE.
  SimCore core = HealthyCore();
  core.set_dvfs(DvfsCurve{1.0, 3.5, 0.65, 1.10});
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-4;
  spec.fvt.volt_slope = 15.0;
  core.AddDefect(spec);

  core.set_operating_point(OperatingPoint{1.0, 60.0});
  const double p_low_freq = core.UnitFireProbability(ExecUnit::kIntAlu);
  core.set_operating_point(OperatingPoint{3.5, 60.0});
  const double p_high_freq = core.UnitFireProbability(ExecUnit::kIntAlu);
  EXPECT_GT(p_low_freq, 10.0 * p_high_freq);
}

TEST(FvtTest, TemperatureSlope) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-4;
  spec.fvt.temp_slope = 1.0;
  const Defect defect(spec);
  Environment cool{OperatingPoint{2.5, 50.0}, 0.9, 1.0};
  Environment hot{OperatingPoint{2.5, 90.0}, 0.9, 1.0};
  EXPECT_NEAR(defect.FireProbability(hot) / defect.FireProbability(cool), std::exp(4.0), 1.0);
}

TEST(FvtTest, InsensitiveDefectIsFlat) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-5;
  const Defect defect(spec);
  Environment a{OperatingPoint{1.0, 40.0}, 0.65, 0.5};
  Environment b{OperatingPoint{3.5, 95.0}, 1.10, 0.5};
  EXPECT_DOUBLE_EQ(defect.FireProbability(a), defect.FireProbability(b));
}

TEST(FvtTest, ProbabilityClampedToOne) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 0.9;
  spec.fvt.temp_slope = 10.0;
  const Defect defect(spec);
  Environment very_hot{OperatingPoint{2.5, 150.0}, 0.9, 1.0};
  EXPECT_DOUBLE_EQ(defect.FireProbability(very_hot), 1.0);
}

// --- Aging ---------------------------------------------------------------------------------

TEST(AgingTest, LatentDefectSilentBeforeOnset) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.aging.onset = SimTime::Days(365);
  core.AddDefect(spec);

  core.set_age(SimTime::Days(100));
  EXPECT_FALSE(core.AnyDefectActive());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(core.Alu(AluOp::kAdd, i, 1), static_cast<uint64_t>(i + 1));
  }

  core.set_age(SimTime::Days(400));
  EXPECT_TRUE(core.AnyDefectActive());
  EXPECT_NE(core.Alu(AluOp::kAdd, 1, 1), 2u);
}

TEST(AgingTest, RateGrowsAfterOnset) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-6;
  spec.aging.onset = SimTime::Days(0);
  spec.aging.growth_per_year = 1.0;  // doubles every year
  const Defect defect(spec);
  Environment year1{OperatingPoint{}, 0.9, 1.0};
  Environment year3{OperatingPoint{}, 0.9, 3.0};
  EXPECT_NEAR(defect.FireProbability(year3) / defect.FireProbability(year1), 4.0, 0.01);
}

TEST(FvtTest, ProbabilityClampedToZeroAndOne) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-3;
  spec.fvt.temp_slope = 50.0;
  const Defect defect(spec);
  Environment very_hot{OperatingPoint{2.5, 200.0}, 0.9, 1.0};
  EXPECT_DOUBLE_EQ(defect.FireProbability(very_hot), 1.0);
  // exp(50 * (-400 - 60) / 10) underflows to zero: the clamp's lower edge, never negative.
  Environment very_cold{OperatingPoint{2.5, -400.0}, 0.9, 1.0};
  EXPECT_DOUBLE_EQ(defect.FireProbability(very_cold), 0.0);
}

TEST(AgingTest, FireProbabilityZeroBeforeOnset) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.aging.onset = SimTime::Days(365);
  const Defect defect(spec);
  Environment just_before{OperatingPoint{}, 0.9, 0.999};
  EXPECT_DOUBLE_EQ(defect.FireProbability(just_before), 0.0);
}

TEST(AgingTest, NoGrowthAtExactOnsetBoundary) {
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.base_rate = 1e-4;
  spec.aging.onset = SimTime::Days(365);  // onset_years == 1.0 exactly
  spec.aging.growth_per_year = 1.0;
  const Defect defect(spec);
  // Active at the boundary (age >= onset) but years_past_onset == 0: no growth multiplier.
  Environment at_onset{OperatingPoint{}, 0.9, 1.0};
  EXPECT_DOUBLE_EQ(defect.FireProbability(at_onset), 1e-4);
  Environment a_year_later{OperatingPoint{}, 0.9, 2.0};
  EXPECT_NEAR(defect.FireProbability(a_year_later), 2e-4, 1e-12);
}

// --- Dispatch-cache invalidation -----------------------------------------------------------

TEST(SimCoreTest, EnvRevisionTracksEnvironmentChanges) {
  SimCore core = HealthyCore();
  const uint64_t r0 = core.env_revision();
  core.set_operating_point(core.operating_point());
  EXPECT_EQ(core.env_revision(), r0) << "unchanged operating point must not invalidate";
  OperatingPoint hotter = core.operating_point();
  hotter.temperature_c += 20.0;
  core.set_operating_point(hotter);
  EXPECT_GT(core.env_revision(), r0);

  const uint64_t r1 = core.env_revision();
  core.set_age(core.age());
  EXPECT_EQ(core.env_revision(), r1) << "unchanged age must not invalidate";
  core.set_age(SimTime::Days(10));
  EXPECT_GT(core.env_revision(), r1);

  const uint64_t r2 = core.env_revision();
  core.set_dvfs(DvfsCurve{});
  EXPECT_GT(core.env_revision(), r2);

  const uint64_t r3 = core.env_revision();
  core.AddDefect(AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip));
  EXPECT_GT(core.env_revision(), r3);
}

TEST(SimCoreTest, DispatchCacheInvalidatedByOperatingPoint) {
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip);
  spec.fvt.temp_slope = 50.0;  // p == 1 at nominal temperature, underflows to 0 when frozen
  core.AddDefect(spec);
  ASSERT_TRUE(core.fast_path());
  EXPECT_NE(core.Alu(AluOp::kAdd, 1, 1), 2u) << "armed at p=1: every op corrupts";

  OperatingPoint frozen = core.operating_point();
  frozen.temperature_c = -400.0;
  core.set_operating_point(frozen);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(core.Alu(AluOp::kAdd, i, 1), static_cast<uint64_t>(i + 1))
        << "cache must re-arm after set_operating_point";
  }

  core.set_operating_point(OperatingPoint{});
  EXPECT_NE(core.Alu(AluOp::kAdd, 1, 1), 2u) << "cache must re-arm again on restore";
}

// --- Catalog -------------------------------------------------------------------------------

class DefectCatalogTest : public ::testing::TestWithParam<int> {};

TEST_P(DefectCatalogTest, DrawProducesConsistentSpec) {
  const auto klass = static_cast<DefectClass>(GetParam());
  Rng rng(1000 + GetParam());
  const CatalogOptions options;
  const DefectSpec spec = DrawDefect(klass, options, rng);
  EXPECT_EQ(spec.label, DefectClassName(klass));
  switch (klass) {
    case DefectClass::kVectorBitFlip:
      EXPECT_EQ(spec.unit, ExecUnit::kVector);
      EXPECT_EQ(spec.effect, DefectEffect::kBitFlip);
      EXPECT_GE(spec.bit_index, 0);
      EXPECT_LT(spec.bit_index, 128);
      break;
    case DefectClass::kCopyStuckBit:
      EXPECT_EQ(spec.unit, ExecUnit::kCopy);
      EXPECT_TRUE(spec.effect == DefectEffect::kStuckSet ||
                  spec.effect == DefectEffect::kStuckClear);
      break;
    case DefectClass::kSelfInvertingAes:
      EXPECT_EQ(spec.unit, ExecUnit::kAes);
      EXPECT_EQ(spec.effect, DefectEffect::kRconCorrupt);
      EXPECT_DOUBLE_EQ(spec.fvt.base_rate, 1.0);
      EXPECT_DOUBLE_EQ(spec.machine_check_fraction, 0.0);
      break;
    case DefectClass::kLockDrop:
      EXPECT_EQ(spec.unit, ExecUnit::kAtomic);
      break;
    case DefectClass::kDeterministicAlu:
      EXPECT_EQ(spec.unit, ExecUnit::kIntAlu);
      EXPECT_EQ(spec.effect, DefectEffect::kDeterministicWrong);
      EXPECT_NE(spec.trigger.mask, 0u) << "deterministic cases are data-triggered";
      break;
    default:
      break;
  }
  // Rates drawn within the catalog's bounds (deterministic classes pin base_rate to 1).
  if (spec.fvt.base_rate != 1.0) {
    EXPECT_GE(spec.fvt.base_rate, std::pow(10.0, options.log10_rate_min) * 0.999);
    EXPECT_LE(spec.fvt.base_rate, std::pow(10.0, options.log10_rate_max) * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, DefectCatalogTest,
                         ::testing::Range(0, kDefectClassCount));

TEST(DefectCatalogTest2, DrawRandomDefectIsDeterministicUnderSeed) {
  const CatalogOptions options;
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 20; ++i) {
    const DefectSpec a = DrawRandomDefect(options, rng_a);
    const DefectSpec b = DrawRandomDefect(options, rng_b);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(static_cast<int>(a.unit), static_cast<int>(b.unit));
    EXPECT_DOUBLE_EQ(a.fvt.base_rate, b.fvt.base_rate);
    EXPECT_EQ(a.bit_index, b.bit_index);
  }
}

TEST(DefectCatalogTest2, AllClassesEnumerated) {
  const auto classes = AllDefectClasses();
  EXPECT_EQ(classes.size(), static_cast<size_t>(kDefectClassCount));
  std::set<int> unique;
  for (DefectClass klass : classes) {
    unique.insert(static_cast<int>(klass));
    EXPECT_STRNE(DefectClassName(klass), "unknown");
  }
  EXPECT_EQ(unique.size(), classes.size());
}

TEST(ExecUnitTest, AllUnitsHaveNames) {
  for (int u = 0; u < kExecUnitCount; ++u) {
    EXPECT_STRNE(ExecUnitName(static_cast<ExecUnit>(u)), "unknown");
  }
}

}  // namespace
}  // namespace mercurial
