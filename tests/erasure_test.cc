// Tests for src/substrate/reed_solomon.h and src/mitigate/ec_store.h.

#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mitigate/ec_store.h"
#include "src/substrate/reed_solomon.h"

namespace mercurial {
namespace {

std::vector<std::vector<uint8_t>> RandomShards(Rng& rng, int k, size_t bytes) {
  std::vector<std::vector<uint8_t>> shards(k, std::vector<uint8_t>(bytes));
  for (auto& shard : shards) {
    rng.FillBytes(shard.data(), bytes);
  }
  return shards;
}

// --- GF(2^8) -----------------------------------------------------------------------------------

TEST(Gf256Test, MulMatchesAesGf) {
  // Spot checks against the AES GF multiply used to build the tables.
  EXPECT_EQ(Gf256Mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(Gf256Mul(0x57, 0x13), 0xfe);
  EXPECT_EQ(Gf256Mul(0, 0x42), 0);
  EXPECT_EQ(Gf256Mul(0x42, 0), 0);
  EXPECT_EQ(Gf256Mul(1, 0x42), 0x42);
}

TEST(Gf256Test, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = Gf256Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, MulIsCommutativeAndAssociative) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto c = static_cast<uint8_t>(rng.UniformInt(0, 255));
    EXPECT_EQ(Gf256Mul(a, b), Gf256Mul(b, a));
    EXPECT_EQ(Gf256Mul(Gf256Mul(a, b), c), Gf256Mul(a, Gf256Mul(b, c)));
  }
}

// --- Reed-Solomon --------------------------------------------------------------------------------

TEST(ReedSolomonTest, NoErasuresRoundTrip) {
  Rng rng(2);
  const auto data = RandomShards(rng, 4, 64);
  const auto parity = RsEncode(data, 2);
  ASSERT_EQ(parity.size(), 2u);

  std::vector<std::optional<std::vector<uint8_t>>> shards;
  for (const auto& shard : data) {
    shards.emplace_back(shard);
  }
  for (const auto& shard : parity) {
    shards.emplace_back(shard);
  }
  const auto reconstructed = RsReconstruct(shards, 4);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ(*reconstructed, data);
}

TEST(ReedSolomonTest, RecoversFromAnyMErasures) {
  // Exhaustive over all 2-erasure patterns of a (4+2) code.
  Rng rng(3);
  const auto data = RandomShards(rng, 4, 32);
  const auto parity = RsEncode(data, 2);
  for (int e1 = 0; e1 < 6; ++e1) {
    for (int e2 = e1 + 1; e2 < 6; ++e2) {
      std::vector<std::optional<std::vector<uint8_t>>> shards;
      for (const auto& shard : data) {
        shards.emplace_back(shard);
      }
      for (const auto& shard : parity) {
        shards.emplace_back(shard);
      }
      shards[e1] = std::nullopt;
      shards[e2] = std::nullopt;
      const auto reconstructed = RsReconstruct(shards, 4);
      ASSERT_TRUE(reconstructed.ok()) << "erasures " << e1 << "," << e2;
      EXPECT_EQ(*reconstructed, data) << "erasures " << e1 << "," << e2;
    }
  }
}

TEST(ReedSolomonTest, TooManyErasuresIsDataLoss) {
  Rng rng(4);
  const auto data = RandomShards(rng, 3, 16);
  const auto parity = RsEncode(data, 2);
  std::vector<std::optional<std::vector<uint8_t>>> shards(5);
  shards[0] = data[0];
  shards[3] = parity[0];  // only 2 of 5 survive; k=3
  const auto result = RsReconstruct(shards, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ReedSolomonTest, ZeroParityDegeneratesToIdentity) {
  Rng rng(5);
  const auto data = RandomShards(rng, 4, 16);
  EXPECT_TRUE(RsEncode(data, 0).empty());
}

TEST(ReedSolomonTest, SingleDataShard) {
  Rng rng(6);
  const auto data = RandomShards(rng, 1, 16);
  const auto parity = RsEncode(data, 3);
  // With k=1 every parity shard is a copy of the polynomial constant = the data.
  std::vector<std::optional<std::vector<uint8_t>>> shards(4);
  shards[2] = parity[1];  // recover from one parity shard alone
  const auto reconstructed = RsReconstruct(shards, 1);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ((*reconstructed)[0], data[0]);
}

TEST(ReedSolomonTest, WideCode) {
  Rng rng(7);
  const auto data = RandomShards(rng, 10, 40);
  const auto parity = RsEncode(data, 4);
  std::vector<std::optional<std::vector<uint8_t>>> shards;
  for (const auto& shard : data) {
    shards.emplace_back(shard);
  }
  for (const auto& shard : parity) {
    shards.emplace_back(shard);
  }
  // Drop four scattered shards (the max).
  shards[0] = shards[5] = shards[9] = shards[12] = std::nullopt;
  const auto reconstructed = RsReconstruct(shards, 10);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ(*reconstructed, data);
}

// --- ErasureCodedStore ----------------------------------------------------------------------------

struct Servers {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit Servers(int n) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(400 + i)));
      ptrs.push_back(owned.back().get());
    }
  }

  void Corrupt(int index, double rate) {
    DefectSpec spec;
    spec.unit = ExecUnit::kCopy;
    spec.effect = DefectEffect::kBitFlip;
    spec.fvt.base_rate = rate;
    owned[index]->AddDefect(spec);
  }
};

TEST(EcStoreTest, HealthyRoundTrip) {
  Servers servers(6);
  ErasureCodedStore store(servers.ptrs, 4, 2);
  EXPECT_DOUBLE_EQ(store.storage_overhead(), 1.5);
  Rng rng(8);
  std::vector<uint8_t> data(1000);
  rng.FillBytes(data.data(), data.size());
  store.Write(1, data);
  const auto read = store.Read(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(store.stats().shards_discarded, 0u);
}

TEST(EcStoreTest, PayloadNotMultipleOfShards) {
  Servers servers(5);
  ErasureCodedStore store(servers.ptrs, 3, 2);
  Rng rng(9);
  for (size_t n : {1u, 2u, 3u, 100u, 101u}) {
    std::vector<uint8_t> data(n);
    rng.FillBytes(data.data(), n);
    store.Write(n, data);
    const auto read = store.Read(n);
    ASSERT_TRUE(read.ok()) << "n=" << n;
    EXPECT_EQ(*read, data) << "n=" << n;
  }
}

TEST(EcStoreTest, ToleratesUpToParityCountCorruptServers) {
  Servers servers(6);
  servers.Corrupt(1, 1.0);  // a data-shard server
  servers.Corrupt(4, 1.0);  // a parity-shard server
  ErasureCodedStore store(servers.ptrs, 4, 2);
  Rng rng(10);
  std::vector<uint8_t> data(800);
  rng.FillBytes(data.data(), data.size());
  store.Write(1, data);
  const auto read = store.Read(1);
  ASSERT_TRUE(read.ok()) << "two corrupt shards within a (4+2) code must reconstruct";
  EXPECT_EQ(*read, data);
  EXPECT_GT(store.stats().shards_discarded, 0u);
  EXPECT_EQ(store.stats().reconstructions, 1u);
}

TEST(EcStoreTest, FailsClosedBeyondParityBudget) {
  Servers servers(6);
  servers.Corrupt(0, 1.0);
  servers.Corrupt(1, 1.0);
  servers.Corrupt(2, 1.0);  // three corrupt shards > m=2
  ErasureCodedStore store(servers.ptrs, 4, 2);
  Rng rng(11);
  std::vector<uint8_t> data(400);
  rng.FillBytes(data.data(), data.size());
  store.Write(1, data);
  const auto read = store.Read(1);
  ASSERT_FALSE(read.ok()) << "beyond the parity budget the store must fail closed, not lie";
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(EcStoreTest, ReadMissingKey) {
  Servers servers(3);
  ErasureCodedStore store(servers.ptrs, 2, 1);
  EXPECT_EQ(store.Read(404).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mercurial
