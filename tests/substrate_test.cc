// Tests for src/substrate: golden AES, checksums, LZ, matrix kernels.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/substrate/aes.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"
#include "src/substrate/matrix.h"

namespace mercurial {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// --- AES ---------------------------------------------------------------------------------

TEST(AesTest, Fips197AppendixBVector) {
  // FIPS-197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
  // plaintext 3243f6a8885a308d313198a2e0370734 -> ciphertext 3925841d02dc09fbdc118597196a0b32.
  const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const AesBlock plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                              0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const AesBlock expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                             0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  const AesKeySchedule schedule = ExpandAesKey(key);
  EXPECT_EQ(AesEncryptBlock(schedule, plaintext), expected);
  EXPECT_EQ(AesDecryptBlock(schedule, expected), plaintext);
}

TEST(AesTest, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233445566778899aabbccddeeff.
  uint8_t key[16];
  AesBlock plaintext;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i);
    plaintext[i] = static_cast<uint8_t>(0x11 * i);
  }
  const AesBlock expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                             0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const AesKeySchedule schedule = ExpandAesKey(key);
  EXPECT_EQ(AesEncryptBlock(schedule, plaintext), expected);
  EXPECT_EQ(AesDecryptBlock(schedule, expected), plaintext);
}

TEST(AesTest, KeyExpansionFirstAndLastRoundKeys) {
  // FIPS-197 Appendix A key expansion for 2b7e1516...: w[40..43] = d014f9a8 c9ee2589 e13f0cc8
  // b6630ca6.
  const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const AesKeySchedule schedule = ExpandAesKey(key);
  EXPECT_TRUE(std::memcmp(schedule.round_keys[0].data(), key, 16) == 0);
  const AesBlock last = {0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89,
                         0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6};
  EXPECT_EQ(schedule.round_keys[10], last);
}

TEST(AesTest, RoundTripProperty) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    uint8_t key[16];
    rng.FillBytes(key, 16);
    AesBlock block;
    rng.FillBytes(block.data(), block.size());
    const AesKeySchedule schedule = ExpandAesKey(key);
    EXPECT_EQ(AesDecryptBlock(schedule, AesEncryptBlock(schedule, block)), block);
  }
}

TEST(AesTest, DecRoundInvertsEncRound) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    AesBlock state;
    AesBlock round_key;
    rng.FillBytes(state.data(), state.size());
    rng.FillBytes(round_key.data(), round_key.size());
    for (bool last : {false, true}) {
      EXPECT_EQ(AesDecRound(AesEncRound(state, round_key, last), round_key, last), state);
    }
  }
}

TEST(AesTest, SboxIsABijectionAndInverseMatches) {
  std::vector<bool> seen(256, false);
  for (int i = 0; i < 256; ++i) {
    const uint8_t s = AesSubByte(static_cast<uint8_t>(i));
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
    EXPECT_EQ(AesInvSubByte(s), i);
  }
}

TEST(AesTest, KnownSboxEntries) {
  EXPECT_EQ(AesSubByte(0x00), 0x63);
  EXPECT_EQ(AesSubByte(0x53), 0xed);
  EXPECT_EQ(AesSubByte(0xff), 0x16);
}

TEST(AesTest, GfMulProperties) {
  // Identity and known products from FIPS-197 §4.2: {57}*{83} = {c1}, {57}*{13} = {fe}.
  EXPECT_EQ(AesGfMul(0x57, 0x01), 0x57);
  EXPECT_EQ(AesGfMul(0x57, 0x83), 0xc1);
  EXPECT_EQ(AesGfMul(0x57, 0x13), 0xfe);
  // Commutativity.
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    EXPECT_EQ(AesGfMul(a, b), AesGfMul(b, a));
  }
}

TEST(AesTest, StandardRconSequence) {
  const uint8_t expected[10] = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36};
  for (int r = 1; r <= 10; ++r) {
    EXPECT_EQ(StandardAesRcon(r), expected[r - 1]) << "round " << r;
  }
}

TEST(AesTest, CorruptedRconChangesScheduleDeterministically) {
  uint8_t key[16] = {};
  const AesKeySchedule golden = ExpandAesKey(key);
  const AesRconFn bad_rcon = [](int round) {
    return static_cast<uint8_t>(StandardAesRcon(round) ^ 0x10);
  };
  const AesKeySchedule bad1 = ExpandAesKey(key, bad_rcon);
  const AesKeySchedule bad2 = ExpandAesKey(key, bad_rcon);
  EXPECT_NE(bad1.round_keys[10], golden.round_keys[10]);
  EXPECT_EQ(bad1.round_keys[10], bad2.round_keys[10]);
  // Enc/dec with the same wrong schedule is still the identity (self-inverting).
  AesBlock block = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  EXPECT_EQ(AesDecryptBlock(bad1, AesEncryptBlock(bad1, block)), block);
  // But the ciphertext differs from spec.
  EXPECT_NE(AesEncryptBlock(bad1, block), AesEncryptBlock(golden, block));
}

TEST(AesTest, CtrRoundTripAndSymmetry) {
  Rng rng(4);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  const AesKeySchedule schedule = ExpandAesKey(key);
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    std::vector<uint8_t> data(n);
    rng.FillBytes(data.data(), n);
    const std::vector<uint8_t> ct = AesCtrTransform(schedule, 99, data);
    EXPECT_EQ(ct.size(), n);
    EXPECT_EQ(AesCtrTransform(schedule, 99, ct), data);
    if (n >= 16) {
      EXPECT_NE(ct, data);  // keystream actually applied
    }
  }
}

TEST(AesTest, CtrNonceSeparation) {
  uint8_t key[16] = {1};
  const AesKeySchedule schedule = ExpandAesKey(key);
  const std::vector<uint8_t> data(64, 0xAA);
  EXPECT_NE(AesCtrTransform(schedule, 1, data), AesCtrTransform(schedule, 2, data));
}

// --- Checksums ----------------------------------------------------------------------------

TEST(ChecksumTest, Crc32KnownVector) {
  const auto data = Bytes("123456789");
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(ChecksumTest, Crc32EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(ChecksumTest, Crc32IncrementalMatchesOneShot) {
  const auto data = Bytes("the quick brown fox jumps over the lazy dog");
  uint32_t crc = Crc32Init();
  for (uint8_t b : data) {
    crc = Crc32Update(crc, b);
  }
  EXPECT_EQ(Crc32Final(crc), Crc32(data));
}

TEST(ChecksumTest, Crc32DetectsSingleBitFlip) {
  Rng rng(5);
  std::vector<uint8_t> data(256);
  rng.FillBytes(data.data(), data.size());
  const uint32_t original = Crc32(data);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> mutated = data;
    const size_t bit = rng.UniformInt(0, data.size() * 8 - 1);
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(mutated), original);
  }
}

TEST(ChecksumTest, Crc64KnownVector) {
  const auto data = Bytes("123456789");
  // CRC-64/XZ (reflected ECMA-182, init/xorout all-ones).
  EXPECT_EQ(Crc64(data.data(), data.size()), 0x995DC9BBDF1939FAull);
}

TEST(ChecksumTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const auto a = Bytes("a");
  EXPECT_EQ(Fnv1a64(a.data(), 1), 0xaf63dc4c8601ec8cull);
}

TEST(ChecksumTest, ContentHashDiscriminates) {
  const auto a = Bytes("hello world");
  auto b = Bytes("hello worle");
  EXPECT_NE(ContentHash64(a.data(), a.size()), ContentHash64(b.data(), b.size()));
  EXPECT_EQ(ContentHash64(a.data(), a.size()), ContentHash64(a.data(), a.size()));
  // Length-sensitivity.
  EXPECT_NE(ContentHash64(a.data(), a.size()), ContentHash64(a.data(), a.size() - 1));
}

TEST(ChecksumTest, MultisetDigestIsOrderInvariant) {
  std::vector<uint64_t> items{5, 1, 9, 9, 3};
  std::vector<uint64_t> shuffled{9, 3, 5, 9, 1};
  EXPECT_EQ(MultisetDigest(items.data(), items.size()),
            MultisetDigest(shuffled.data(), shuffled.size()));
  std::vector<uint64_t> different{9, 3, 5, 9, 2};
  EXPECT_NE(MultisetDigest(items.data(), items.size()),
            MultisetDigest(different.data(), different.size()));
}

// --- LZ -----------------------------------------------------------------------------------

class LzRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LzRoundTripTest, RandomData) {
  Rng rng(100 + GetParam());
  std::vector<uint8_t> data(GetParam());
  rng.FillBytes(data.data(), data.size());
  const auto compressed = LzCompress(data);
  const auto decompressed = LzDecompress(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, data);
}

TEST_P(LzRoundTripTest, RepetitiveData) {
  std::vector<uint8_t> data;
  const std::string pattern = "abcabcabcXYZ";
  while (data.size() < GetParam()) {
    data.insert(data.end(), pattern.begin(), pattern.end());
  }
  data.resize(GetParam());
  const auto compressed = LzCompress(data);
  const auto decompressed = LzDecompress(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, data);
  if (GetParam() >= 256) {
    EXPECT_LT(compressed.size(), data.size() / 2) << "repetitive data should compress well";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzRoundTripTest,
                         ::testing::Values(0, 1, 3, 4, 5, 16, 64, 127, 128, 129, 255, 1024,
                                           4096, 65536));

TEST(LzTest, RunLengthEncodingViaOverlap) {
  std::vector<uint8_t> data(1000, 0x42);  // a single repeated byte
  const auto compressed = LzCompress(data);
  EXPECT_LT(compressed.size(), 40u);
  const auto decompressed = LzDecompress(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, data);
}

TEST(LzTest, DecompressRejectsTruncatedLiteralRun) {
  std::vector<uint8_t> bad{10, 'a', 'b'};  // promises 11 literals, provides 2
  const auto result = LzDecompress(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(LzTest, DecompressRejectsTruncatedMatchToken) {
  std::vector<uint8_t> bad{0x80};  // match token without offset bytes
  EXPECT_FALSE(LzDecompress(bad).ok());
}

TEST(LzTest, DecompressRejectsBadOffset) {
  // Literal 'a', then a match reaching back 5 bytes into 1 byte of history.
  std::vector<uint8_t> bad{0x00, 'a', 0x80, 0x05, 0x00};
  const auto result = LzDecompress(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(LzTest, DecompressRejectsZeroOffset) {
  std::vector<uint8_t> bad{0x00, 'a', 0x80, 0x00, 0x00};
  EXPECT_FALSE(LzDecompress(bad).ok());
}

TEST(LzTest, EmptyInput) {
  const auto compressed = LzCompress({});
  EXPECT_TRUE(compressed.empty());
  const auto decompressed = LzDecompress({});
  ASSERT_TRUE(decompressed.ok());
  EXPECT_TRUE(decompressed->empty());
}

// --- Matrix -------------------------------------------------------------------------------

TEST(MatrixTest, IdentityMultiply) {
  Rng rng(6);
  Matrix a(5, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      a.at(i, j) = rng.NextDouble();
    }
  }
  const Matrix product = Multiply(a, Matrix::Identity(5));
  EXPECT_DOUBLE_EQ(product.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, KnownProduct) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;
  b.at(0, 1) = 8;
  b.at(1, 0) = 9;
  b.at(1, 1) = 10;
  b.at(2, 0) = 11;
  b.at(2, 1) = 12;
  const Matrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MatrixTest, LuReconstructsPivotedInput) {
  Rng rng(7);
  for (size_t n : {1u, 2u, 4u, 8u, 16u}) {
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        a.at(i, j) = rng.NextDouble() * 2.0 - 1.0;
      }
      a.at(i, i) += 2.0;  // keep it comfortably nonsingular
    }
    const auto factors = LuFactorize(a);
    ASSERT_TRUE(factors.ok()) << "n=" << n;
    const Matrix reconstructed = LuReconstruct(*factors);
    const Matrix pivoted = PermuteRows(a, factors->pivots);
    EXPECT_LT(reconstructed.MaxAbsDiff(pivoted), 1e-9) << "n=" << n;
  }
}

TEST(MatrixTest, LuLowerIsUnitTriangularUpperIsTriangular) {
  Rng rng(8);
  Matrix a(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      a.at(i, j) = rng.NextDouble() + (i == j ? 3.0 : 0.0);
    }
  }
  const auto factors = LuFactorize(a);
  ASSERT_TRUE(factors.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(factors->lower.at(i, i), 1.0);
    for (size_t j = i + 1; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(factors->lower.at(i, j), 0.0);
    }
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(factors->upper.at(i, j), 0.0, 1e-12);
    }
  }
}

TEST(MatrixTest, LuRejectsSingular) {
  Matrix a(3, 3);  // all zeros
  EXPECT_FALSE(LuFactorize(a).ok());
  // Rank-1 matrix.
  Matrix b(2, 2);
  b.at(0, 0) = 1;
  b.at(0, 1) = 2;
  b.at(1, 0) = 2;
  b.at(1, 1) = 4;
  EXPECT_FALSE(LuFactorize(b).ok());
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a(2, 2);
  a.at(0, 0) = 3;
  a.at(1, 1) = 4;
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

}  // namespace
}  // namespace mercurial
