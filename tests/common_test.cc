// Tests for src/common: RNG, status, time, histograms, statistics helpers.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/csv.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/telemetry/metrics.h"

namespace mercurial {
namespace {

// --- Rng ---------------------------------------------------------------------------------

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitIsDeterministicAndIndependentOfParentPosition) {
  Rng parent(77);
  Rng child1 = parent.Split(5);
  parent.NextU64();  // advance the parent
  Rng child2 = parent.Split(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
}

TEST(RngTest, SplitLabelsProduceDistinctStreams) {
  Rng parent(77);
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(42, 42), 42u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(0.5);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(15);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(2.5));
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(18);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
  EXPECT_EQ(rng.Poisson(-1.0), 0u);
}

// Pins Poisson's algorithm crossover: mean <= 64 runs Knuth inversion, mean > 64 (strictly)
// the normal approximation. The two consume DIFFERENT draw counts from the stream, so the
// boundary is part of every seeded study's identity — background-noise means scale with
// shard width and cross 64 as fleets grow or shard counts change, and a drifted boundary
// (>= instead of >, or a different constant) would silently re-randomize those studies. The
// values are exact outputs for seed 20210531, four consecutive draws per fresh stream.
TEST(RngTest, PoissonInversionToNormalCrossoverIsPinned) {
  const auto draws4 = [](double mean) {
    Rng rng(20210531);
    std::vector<uint64_t> out;
    for (int i = 0; i < 4; ++i) {
      out.push_back(rng.Poisson(mean));
    }
    return out;
  };
  using V = std::vector<uint64_t>;
  // Inversion side (mean <= 64). 63.999 and 64.0 agree because the inversion threshold
  // exp(-mean) moves too little to change any count at this seed.
  EXPECT_EQ(draws4(63.0), (V{68, 64, 51, 52}));
  EXPECT_EQ(draws4(63.999), (V{70, 64, 51, 53}));
  EXPECT_EQ(draws4(64.0), (V{70, 64, 51, 53}));
  // Normal side (mean > 64): the very next representable double switches algorithms — a
  // different draw pattern from the identical stream.
  EXPECT_EQ(draws4(std::nextafter(64.0, 65.0)), (V{74, 50, 80, 61}));
  EXPECT_EQ(draws4(64.001), (V{74, 50, 80, 61}));
  EXPECT_EQ(draws4(65.0), (V{75, 51, 81, 62}));
  EXPECT_EQ(draws4(128.0), (V{142, 108, 151, 123}));
  // The crossover is observable: the two sides disagree on the same stream.
  EXPECT_NE(draws4(64.0), draws4(std::nextafter(64.0, 65.0)));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, FillBytesCoversTailSizes) {
  Rng rng(20);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 31u}) {
    std::vector<uint8_t> buffer(n + 2, 0xAB);
    rng.FillBytes(buffer.data(), n);
    // Guard bytes untouched.
    EXPECT_EQ(buffer[n], 0xAB);
    EXPECT_EQ(buffer[n + 1], 0xAB);
  }
}

TEST(RngTest, Mix64IsStatelessAndNonTrivial) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  EXPECT_NE(Mix64(42), 42u);
}

// --- Status ------------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = DataLossError("corrupted block");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "corrupted block");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: corrupted block");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "ABORTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

// --- SimTime -----------------------------------------------------------------------------

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(SimTime::Minutes(2).seconds(), 120);
  EXPECT_EQ(SimTime::Hours(1).seconds(), 3600);
  EXPECT_EQ(SimTime::Days(1).seconds(), 86400);
  EXPECT_EQ(SimTime::Weeks(1).seconds(), 7 * 86400);
  EXPECT_DOUBLE_EQ(SimTime::Days(365).years(), 1.0);
  EXPECT_DOUBLE_EQ(SimTime::Days(7).weeks(), 1.0);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::Hours(2);
  const SimTime b = SimTime::Hours(3);
  EXPECT_EQ((a + b).seconds(), SimTime::Hours(5).seconds());
  EXPECT_EQ((b - a).seconds(), SimTime::Hours(1).seconds());
  EXPECT_EQ((a * 3).seconds(), SimTime::Hours(6).seconds());
  EXPECT_LT(a, b);
  EXPECT_EQ(a, SimTime::Minutes(120));
}

TEST(SimTimeTest, ToStringFormat) {
  EXPECT_EQ(SimTime::Days(2).ToString(), "2d 00:00:00");
  EXPECT_EQ((SimTime::Days(1) + SimTime::Hours(3) + SimTime::Minutes(4) + SimTime::Seconds(5))
                .ToString(),
            "1d 03:04:05");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now().seconds(), 0);
  clock.Advance(SimTime::Hours(5));
  EXPECT_EQ(clock.now(), SimTime::Hours(5));
  clock.AdvanceTo(SimTime::Days(1));
  EXPECT_EQ(clock.now(), SimTime::Days(1));
}

// --- Histogram ---------------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h(0.0, 10.0, 10);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_NEAR(h.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(11.0);
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

// --- TimeSeries --------------------------------------------------------------------------

TEST(TimeSeriesTest, Bucketing) {
  TimeSeries ts(SimTime::Weeks(1));
  ts.Add(SimTime::Days(0), 1.0);
  ts.Add(SimTime::Days(6), 2.0);
  ts.Add(SimTime::Days(7), 5.0);
  ASSERT_EQ(ts.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(1), 5.0);
  EXPECT_EQ(ts.bucket_samples(0), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(0), 1.5);
  EXPECT_DOUBLE_EQ(ts.total(), 8.0);
}

TEST(TimeSeriesTest, RatesNormalization) {
  TimeSeries ts(SimTime::Weeks(1));
  ts.Add(SimTime::Days(1), 10.0);
  ts.Add(SimTime::Days(8), 30.0);
  const std::vector<double> raw = ts.Rates(10.0, /*normalize_to_first=*/false);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_DOUBLE_EQ(raw[0], 1.0);
  EXPECT_DOUBLE_EQ(raw[1], 3.0);
  const std::vector<double> norm = ts.Rates(10.0, /*normalize_to_first=*/true);
  EXPECT_DOUBLE_EQ(norm[0], 1.0);
  EXPECT_DOUBLE_EQ(norm[1], 3.0);
}

TEST(TimeSeriesTest, NormalizationSkipsLeadingZeros) {
  TimeSeries ts(SimTime::Weeks(1));
  ts.Add(SimTime::Days(8), 4.0);   // bucket 1; bucket 0 empty
  ts.Add(SimTime::Days(15), 8.0);  // bucket 2
  const std::vector<double> norm = ts.Rates(1.0, true);
  EXPECT_DOUBLE_EQ(norm[0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1], 1.0);
  EXPECT_DOUBLE_EQ(norm[2], 2.0);
}

// --- Stats -------------------------------------------------------------------------------

TEST(StatsTest, LogFactorial) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
}

TEST(StatsTest, BinomialCoefficient) {
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 0)), 1.0, 1e-9);
}

TEST(StatsTest, BinomialUpperTailExactSmallCases) {
  // P[X >= 1], X ~ Bin(2, 0.5) = 1 - 0.25 = 0.75.
  EXPECT_NEAR(BinomialUpperTail(1, 2, 0.5), 0.75, 1e-12);
  // P[X >= 2], X ~ Bin(2, 0.5) = 0.25.
  EXPECT_NEAR(BinomialUpperTail(2, 2, 0.5), 0.25, 1e-12);
  // k = 0 is certain.
  EXPECT_DOUBLE_EQ(BinomialUpperTail(0, 10, 0.1), 1.0);
  // k > n impossible.
  EXPECT_DOUBLE_EQ(BinomialUpperTail(11, 10, 0.5), 0.0);
}

TEST(StatsTest, BinomialUpperTailEdgeProbabilities) {
  EXPECT_DOUBLE_EQ(BinomialUpperTail(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialUpperTail(3, 10, 1.0), 1.0);
}

TEST(StatsTest, ConcentrationIsSignificant) {
  // 5 of a machine's 6 reports on one of 48 cores: extremely unlikely under uniform spread.
  const double p = BinomialUpperTail(5, 6, 1.0 / 48.0);
  EXPECT_LT(p, 1e-6);
  // 2 of 96 reports on one of 48 cores: exactly what uniform spread predicts.
  const double q = BinomialUpperTail(2, 96, 1.0 / 48.0);
  EXPECT_GT(q, 0.3);
}

TEST(StatsTest, WilsonLowerBound) {
  EXPECT_DOUBLE_EQ(WilsonLowerBound(0, 0), 0.0);
  const double lb = WilsonLowerBound(50, 100);
  EXPECT_GT(lb, 0.35);
  EXPECT_LT(lb, 0.5);
  EXPECT_GT(WilsonLowerBound(99, 100), WilsonLowerBound(50, 100));
}

// --- MetricRegistry pooled-buffer reuse ---------------------------------------------------

// Regression lock for the pooled shard-delta pattern the fleet engine relies on: a registry
// whose counters are interned at construction, reused via ResetForReuse across ticks, and
// extended with NEWLY interned counters mid-life (the trace.* counters arrive lazily, after
// many reset cycles) must merge exactly like a fresh registry seeing the same events. In
// particular, re-interning an existing name must return the original cell — a duplicate slot
// would make one handle's increments invisible to the other — and interned-but-idle zeros
// must not materialize keys in the merge target.
TEST(MetricRegistryTest, ReuseWithLateInternedCountersMergesLikeFresh) {
  MetricRegistry root;
  MetricRegistry pooled;
  const MetricId crash = pooled.Intern("signals.crash");

  // Tick 1: only the construction-time counter moves.
  pooled.Increment(crash, 3);
  root.Merge(pooled);

  // Tick 2 after reuse: a counter interned mid-life joins the pool.
  pooled.ResetForReuse();
  const MetricId trace_emitted = pooled.Intern("trace.events_emitted");
  pooled.Increment(crash, 2);
  pooled.Increment(trace_emitted, 5);
  root.Merge(pooled);

  // Tick 3: re-interning both names must hit the same cells, not mint duplicates.
  pooled.ResetForReuse();
  const MetricId crash_again = pooled.Intern("signals.crash");
  const MetricId trace_again = pooled.Intern("trace.events_emitted");
  pooled.Increment(crash_again, 1);
  pooled.Increment(trace_emitted, 4);  // pre-reset handle, same cell as trace_again
  EXPECT_EQ(pooled.counter(trace_again), 4u);
  EXPECT_EQ(pooled.counter(crash), 1u);
  root.Merge(pooled);

  EXPECT_EQ(root.counter("signals.crash"), 6u);
  EXPECT_EQ(root.counter("trace.events_emitted"), 9u);
  // Idle interned counters merge as zero without materializing keys.
  pooled.ResetForReuse();
  MetricRegistry clean;
  clean.Merge(pooled);
  EXPECT_TRUE(clean.counters().empty());
}

TEST(MetricRegistryTest, GaugesPrefixQueriesAndDumpCoverTheReadSurface) {
  MetricRegistry registry;
  registry.Increment("trace.events_emitted", 7);
  registry.Increment("trace.events_dropped", 2);
  registry.Increment("signals.crash", 1);
  registry.ObserveMax("queue.peak", 5);
  registry.ObserveMax("queue.peak", 9);   // raises the max
  registry.ObserveMax("queue.peak", 4);   // does not
  EXPECT_EQ(registry.gauge_max("queue.peak"), 9u);
  EXPECT_EQ(registry.gauge_max("queue.never_observed"), 0u);

  const auto traced = registry.CountersWithPrefix("trace.");
  ASSERT_EQ(traced.size(), 2u);
  EXPECT_EQ(traced[0].first, "trace.events_dropped");
  EXPECT_EQ(traced[0].second, 2u);
  EXPECT_EQ(traced[1].first, "trace.events_emitted");
  EXPECT_EQ(traced[1].second, 7u);
  EXPECT_TRUE(registry.CountersWithPrefix("nope.").empty());

  // Gauges must merge by max, not sum.
  MetricRegistry root;
  root.ObserveMax("queue.peak", 6);
  root.Merge(registry);
  EXPECT_EQ(root.gauge_max("queue.peak"), 9u);

  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  registry.Dump(sink);
  std::fclose(sink);
}

// --- Csv ---------------------------------------------------------------------------------

TEST(CsvTest, NumberFormatting) {
  EXPECT_EQ(CsvWriter::Num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::Num(static_cast<uint64_t>(42)), "42");
  EXPECT_EQ(CsvWriter::Num(static_cast<int64_t>(-7)), "-7");
}

}  // namespace
}  // namespace mercurial
