// Tests for src/fleet (population builder) and src/sched (core scheduler, isolation).

#include <set>

#include <gtest/gtest.h>

#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {
namespace {

FleetOptions SmallFleet(double rate_multiplier = 1.0) {
  FleetOptions options;
  options.machine_count = 50;
  options.seed = 99;
  options.mercurial_rate_multiplier = rate_multiplier;
  return options;
}

// --- Fleet ----------------------------------------------------------------------------------

TEST(FleetTest, BuildIsDeterministicUnderSeed) {
  Fleet a = Fleet::Build(SmallFleet(100.0));
  Fleet b = Fleet::Build(SmallFleet(100.0));
  EXPECT_EQ(a.core_count(), b.core_count());
  EXPECT_EQ(a.mercurial_cores(), b.mercurial_cores());
  // Same products per machine.
  for (size_t m = 0; m < a.machine_count(); ++m) {
    EXPECT_EQ(a.machine(m).product().name, b.machine(m).product().name);
    EXPECT_EQ(a.machine(m).install_time(), b.machine(m).install_time());
  }
}

TEST(FleetTest, DifferentSeedsDifferentPopulations) {
  FleetOptions options_a = SmallFleet(200.0);
  FleetOptions options_b = SmallFleet(200.0);
  options_b.seed = 100;
  Fleet a = Fleet::Build(options_a);
  Fleet b = Fleet::Build(options_b);
  EXPECT_NE(a.mercurial_cores(), b.mercurial_cores());
}

TEST(FleetTest, ZeroRateMeansNoMercurialCores) {
  Fleet fleet = Fleet::Build(SmallFleet(0.0));
  EXPECT_TRUE(fleet.mercurial_cores().empty());
  fleet.ForEachCore([](uint64_t, SimCore& core) { EXPECT_TRUE(core.healthy()); });
}

TEST(FleetTest, RateMultiplierScalesIncidence) {
  FleetOptions low = SmallFleet(10.0);
  low.machine_count = 400;
  FleetOptions high = low;
  high.mercurial_rate_multiplier = 100.0;
  const size_t low_count = Fleet::Build(low).mercurial_cores().size();
  const size_t high_count = Fleet::Build(high).mercurial_cores().size();
  EXPECT_GT(high_count, low_count * 3);
}

TEST(FleetTest, MercurialGroundTruthMatchesDefects) {
  FleetOptions options = SmallFleet(500.0);
  Fleet fleet = Fleet::Build(options);
  ASSERT_FALSE(fleet.mercurial_cores().empty());
  fleet.ForEachCore([&](uint64_t index, SimCore& core) {
    EXPECT_EQ(fleet.IsMercurial(index), !core.healthy()) << "core " << index;
  });
}

TEST(FleetTest, CoreIdsAreConsistent) {
  Fleet fleet = Fleet::Build(SmallFleet());
  size_t expected_total = 0;
  for (size_t m = 0; m < fleet.machine_count(); ++m) {
    expected_total += fleet.machine(m).core_count();
  }
  EXPECT_EQ(fleet.core_count(), expected_total);
  for (uint64_t i = 0; i < fleet.core_count(); ++i) {
    const CoreId id = fleet.core_id(i);
    EXPECT_EQ(id.global_index, i);
    EXPECT_EQ(fleet.core(i).id(), i);
    EXPECT_LT(id.machine, fleet.machine_count());
    EXPECT_LT(id.core, fleet.machine(id.machine).core_count());
  }
}

TEST(FleetTest, ProductMixRoughlyHonored) {
  FleetOptions options;
  options.machine_count = 3000;
  options.seed = 5;
  options.product_mix = {1.0, 0.0, 0.0};  // everything is product 0
  Fleet fleet = Fleet::Build(options);
  for (size_t m = 0; m < fleet.machine_count(); ++m) {
    EXPECT_EQ(fleet.machine(m).product().name, "orion-gen2");
  }
}

TEST(FleetTest, InstallTimesWithinSpread) {
  FleetOptions options = SmallFleet();
  options.install_spread = SimTime::Days(100);
  Fleet fleet = Fleet::Build(options);
  for (size_t m = 0; m < fleet.machine_count(); ++m) {
    const SimTime install = fleet.machine(m).install_time();
    EXPECT_LE(install.seconds(), 0);
    EXPECT_GE(install.seconds(), -SimTime::Days(100).seconds());
  }
}

TEST(FleetTest, SetAgesReflectsInstallTime) {
  FleetOptions options = SmallFleet(500.0);
  Fleet fleet = Fleet::Build(options);
  ASSERT_FALSE(fleet.mercurial_cores().empty());
  const SimTime now = SimTime::Days(10);
  fleet.SetAges(now);
  for (uint64_t index : fleet.mercurial_cores()) {
    const Machine& machine = fleet.machine(fleet.core_id(index).machine);
    const SimTime expected = now - machine.install_time();
    EXPECT_EQ(fleet.core(index).age(), expected);
  }
}

TEST(FleetTest, DvfsComesFromProduct) {
  Fleet fleet = Fleet::Build(SmallFleet());
  for (size_t m = 0; m < fleet.machine_count(); ++m) {
    Machine& machine = fleet.machine(m);
    const double v_min = machine.product().dvfs.v_min;
    SimCore& core = machine.core(0);
    core.set_operating_point(OperatingPoint{0.1, 60.0});  // below f_min => clamped to v_min
    EXPECT_DOUBLE_EQ(core.voltage(), v_min);
  }
}

TEST(FleetTest, StandardProductsDifferInRates) {
  const auto products = StandardProducts();
  ASSERT_EQ(products.size(), 3u);
  std::set<std::string> vendors;
  for (const auto& product : products) {
    vendors.insert(product.vendor);
    EXPECT_GT(product.mercurial_core_rate, 0.0);
    EXPECT_GT(product.cores_per_machine, 0);
  }
  EXPECT_GE(vendors.size(), 2u) << "industry-wide problem: multiple vendors";
  EXPECT_GT(products[2].mercurial_core_rate, products[0].mercurial_core_rate)
      << "newest process has the highest rate";
}

// --- Scheduler -------------------------------------------------------------------------------

TEST(SchedulerTest, InitialStateAllActive) {
  CoreScheduler scheduler(10, SchedulerCosts{});
  EXPECT_EQ(scheduler.active_count(), 10u);
  EXPECT_EQ(scheduler.quarantined_count(), 0u);
  for (uint64_t c = 0; c < 10; ++c) {
    EXPECT_TRUE(scheduler.Schedulable(c));
    EXPECT_EQ(static_cast<int>(scheduler.state(c)), static_cast<int>(CoreState::kActive));
  }
}

TEST(SchedulerTest, DrainQuarantineReleaseCycle) {
  CoreScheduler scheduler(4, SchedulerCosts{});
  EXPECT_TRUE(scheduler.Drain(1));
  EXPECT_EQ(static_cast<int>(scheduler.state(1)), static_cast<int>(CoreState::kDraining));
  EXPECT_FALSE(scheduler.Schedulable(1));
  EXPECT_EQ(scheduler.active_count(), 3u);

  scheduler.Quarantine(1);
  EXPECT_EQ(scheduler.quarantined_count(), 1u);

  scheduler.Release(1);
  EXPECT_TRUE(scheduler.Schedulable(1));
  EXPECT_EQ(scheduler.active_count(), 4u);
  EXPECT_EQ(scheduler.stats().drains, 1u);
  EXPECT_EQ(scheduler.stats().quarantines, 1u);
  EXPECT_EQ(scheduler.stats().releases, 1u);
}

TEST(SchedulerTest, DrainOnlyFromActive) {
  CoreScheduler scheduler(2, SchedulerCosts{});
  EXPECT_TRUE(scheduler.Drain(0));
  EXPECT_FALSE(scheduler.Drain(0)) << "already draining";
}

TEST(SchedulerTest, QuarantineFromActiveImplicitlyDrains) {
  CoreScheduler scheduler(2, SchedulerCosts{});
  scheduler.Quarantine(0);
  EXPECT_EQ(scheduler.stats().drains, 1u);
  EXPECT_EQ(scheduler.quarantined_count(), 1u);
}

TEST(SchedulerTest, RetireIsTerminal) {
  CoreScheduler scheduler(3, SchedulerCosts{});
  scheduler.Quarantine(2);
  scheduler.Retire(2);
  EXPECT_EQ(scheduler.retired_count(), 1u);
  EXPECT_FALSE(scheduler.Schedulable(2));
  EXPECT_FALSE(scheduler.Drain(2));
  EXPECT_FALSE(scheduler.SurpriseRemove(2));
}

TEST(SchedulerTest, SurpriseRemovalCostsLostWork) {
  SchedulerCosts costs;
  costs.surprise_kill_core_seconds = 600.0;
  CoreScheduler scheduler(2, costs);
  EXPECT_TRUE(scheduler.SurpriseRemove(0));
  EXPECT_DOUBLE_EQ(scheduler.stats().lost_work_core_seconds, 600.0);
  EXPECT_EQ(scheduler.stats().surprise_removals, 1u);
}

TEST(SchedulerTest, DrainCostsMigration) {
  SchedulerCosts costs;
  costs.migrate_task_core_seconds = 30.0;
  costs.tasks_per_core = 2.0;
  CoreScheduler scheduler(2, costs);
  scheduler.Drain(0);
  EXPECT_DOUBLE_EQ(scheduler.stats().migration_cost_core_seconds, 60.0);
}

TEST(SchedulerTest, NextActiveCoreRoundRobinSkipsUnschedulable) {
  CoreScheduler scheduler(4, SchedulerCosts{});
  scheduler.Quarantine(1);
  std::vector<uint64_t> picks;
  for (int i = 0; i < 6; ++i) {
    const auto pick = scheduler.NextActiveCore();
    ASSERT_TRUE(pick.has_value());
    picks.push_back(*pick);
    EXPECT_NE(*pick, 1u);
  }
  EXPECT_EQ(picks, (std::vector<uint64_t>{0, 2, 3, 0, 2, 3}));
}

TEST(SchedulerTest, NextActiveCoreEmptyWhenAllRemoved) {
  CoreScheduler scheduler(2, SchedulerCosts{});
  scheduler.Quarantine(0);
  scheduler.Quarantine(1);
  EXPECT_FALSE(scheduler.NextActiveCore().has_value());
}

TEST(SchedulerTest, StrandingAccumulation) {
  CoreScheduler scheduler(10, SchedulerCosts{});
  scheduler.Quarantine(0);
  scheduler.Quarantine(1);
  scheduler.AccumulateStranding(SimTime::Hours(1));
  EXPECT_DOUBLE_EQ(scheduler.stats().stranded_core_seconds, 2.0 * 3600.0);
  scheduler.Quarantine(2);
  scheduler.Retire(2);
  scheduler.AccumulateStranding(SimTime::Hours(1));
  EXPECT_DOUBLE_EQ(scheduler.stats().stranded_core_seconds, 2.0 * 3600.0 + 3.0 * 3600.0);
}

TEST(SchedulerTest, StateNames) {
  EXPECT_STREQ(CoreStateName(CoreState::kActive), "active");
  EXPECT_STREQ(CoreStateName(CoreState::kDraining), "draining");
  EXPECT_STREQ(CoreStateName(CoreState::kQuarantined), "quarantined");
  EXPECT_STREQ(CoreStateName(CoreState::kRetired), "retired");
}

TEST(SafePlacementTest, DisjointUnitsAreSafe) {
  // §6.1: tasks that avoid the defective unit may run on a mercurial core.
  const std::vector<ExecUnit> failed{ExecUnit::kAes, ExecUnit::kVector};
  EXPECT_TRUE(TaskSafeOnCore({ExecUnit::kIntAlu, ExecUnit::kLoad}, failed));
  EXPECT_FALSE(TaskSafeOnCore({ExecUnit::kAes}, failed));
  EXPECT_FALSE(TaskSafeOnCore({ExecUnit::kIntAlu, ExecUnit::kVector}, failed));
  EXPECT_TRUE(TaskSafeOnCore({}, failed)) << "a task using no units is vacuously safe";
  EXPECT_TRUE(TaskSafeOnCore({ExecUnit::kCopy}, {})) << "no known-bad units";
}

}  // namespace
}  // namespace mercurial
