// Tests for src/workload: core-routed kernels, the corpus, the stress battery.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/core.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"
#include "src/substrate/matrix.h"
#include "src/workload/core_routines.h"
#include "src/workload/stress.h"
#include "src/workload/workload.h"

namespace mercurial {
namespace {

SimCore HealthyCore(uint64_t id = 1) { return SimCore(id, Rng(id)); }

DefectSpec AlwaysFire(ExecUnit unit, DefectEffect effect, double rate = 1.0) {
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = effect;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

std::vector<uint8_t> RandomBytes(Rng& rng, size_t n) {
  std::vector<uint8_t> data(n);
  rng.FillBytes(data.data(), n);
  return data;
}

// --- Core routines on healthy cores match golden -------------------------------------------

TEST(CoreRoutinesTest, MemcpyMatches) {
  SimCore core = HealthyCore();
  Rng rng(1);
  for (size_t n : {0u, 1u, 7u, 8u, 100u, 1000u}) {
    const auto data = RandomBytes(rng, n);
    EXPECT_EQ(CoreMemcpy(core, data), data);
  }
}

TEST(CoreRoutinesTest, Fnv1aMatchesGolden) {
  SimCore core = HealthyCore();
  Rng rng(2);
  for (size_t n : {0u, 1u, 8u, 9u, 63u, 256u}) {
    const auto data = RandomBytes(rng, n);
    EXPECT_EQ(CoreFnv1a64(core, data), Fnv1a64(data)) << "n=" << n;
  }
}

TEST(CoreRoutinesTest, Crc32MatchesGolden) {
  SimCore core = HealthyCore();
  Rng rng(3);
  for (size_t n : {0u, 1u, 64u, 65u, 500u}) {
    const auto data = RandomBytes(rng, n);
    EXPECT_EQ(CoreCrc32(core, data), Crc32(data)) << "n=" << n;
  }
}

TEST(CoreRoutinesTest, AesCtrMatchesGolden) {
  SimCore core = HealthyCore();
  Rng rng(4);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  for (size_t n : {0u, 5u, 16u, 47u, 256u}) {
    const auto data = RandomBytes(rng, n);
    const auto on_core = CoreAesCtr(core, key, 7, data);
    const auto golden = AesCtrTransform(ExpandAesKey(key), 7, data);
    EXPECT_EQ(on_core, golden) << "n=" << n;
  }
}

TEST(CoreRoutinesTest, AesBlockHelpersRoundTrip) {
  SimCore core = HealthyCore();
  Rng rng(5);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  const AesKeySchedule schedule = ExpandAesKey(key);
  AesBlock block;
  rng.FillBytes(block.data(), block.size());
  const AesBlock ct = CoreAesEncryptBlock(core, schedule, block);
  EXPECT_EQ(ct, AesEncryptBlock(schedule, block));
  EXPECT_EQ(CoreAesDecryptBlock(core, schedule, ct), block);
}

TEST(CoreRoutinesTest, LzDecompressMatchesGolden) {
  SimCore core = HealthyCore();
  Rng rng(6);
  // Mixed compressible payload.
  std::vector<uint8_t> data;
  for (int i = 0; i < 50; ++i) {
    const auto chunk = RandomBytes(rng, 20);
    data.insert(data.end(), chunk.begin(), chunk.end());
    data.insert(data.end(), chunk.begin(), chunk.end());  // guaranteed matches
  }
  const auto compressed = LzCompress(data);
  const auto result = CoreLzDecompress(core, compressed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, data);
}

TEST(CoreRoutinesTest, LzDecompressRejectsMalformed) {
  SimCore core = HealthyCore();
  EXPECT_FALSE(CoreLzDecompress(core, {0x80}).ok());
  EXPECT_FALSE(CoreLzDecompress(core, {0x00, 'a', 0x80, 0x05, 0x00}).ok());
  EXPECT_FALSE(CoreLzDecompress(core, {10, 'a'}).ok());
}

TEST(CoreRoutinesTest, MergeSortMatchesStdSort) {
  SimCore core = HealthyCore();
  Rng rng(7);
  for (size_t n : {0u, 1u, 2u, 3u, 17u, 64u, 255u, 1000u}) {
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) {
      k = rng.NextU64() % 100;  // plenty of duplicates
    }
    std::vector<uint64_t> golden = keys;
    std::sort(golden.begin(), golden.end());
    EXPECT_EQ(CoreMergeSort(core, keys), golden) << "n=" << n;
  }
}

TEST(CoreRoutinesTest, MatmulMatchesGolden) {
  SimCore core = HealthyCore();
  Rng rng(8);
  Matrix a(6, 4);
  Matrix b(4, 5);
  for (auto& v : a.data()) {
    v = rng.NextDouble();
  }
  for (auto& v : b.data()) {
    v = rng.NextDouble();
  }
  EXPECT_LT(CoreMatmul(core, a, b).MaxAbsDiff(Multiply(a, b)), 1e-12);
}

TEST(CoreRoutinesTest, VectorXorFoldMatchesScalarFold) {
  SimCore core = HealthyCore();
  Rng rng(9);
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 250u}) {
    const auto data = RandomBytes(rng, n);
    uint64_t expected = 0;
    for (size_t i = 0; i < n; i += 16) {
      uint8_t buffer[16] = {0};
      std::copy(data.begin() + i, data.begin() + std::min(n, i + 16), buffer);
      uint64_t lo;
      uint64_t hi;
      std::memcpy(&lo, buffer, 8);
      std::memcpy(&hi, buffer + 8, 8);
      expected ^= lo ^ hi;
    }
    EXPECT_EQ(CoreVectorXorFold(core, data), expected) << "n=" << n;
  }
}

// --- Corruption propagation through routines -----------------------------------------------

TEST(CoreRoutinesTest, CopyStuckBitCorruptsMemcpyAtFixedPosition) {
  // The paper's "repeated bit-flips in strings at a particular bit position".
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kCopy, DefectEffect::kStuckSet, 1.0);
  spec.bit_index = 9;  // bit 1 of byte 1 in every 8-byte chunk
  core.AddDefect(spec);
  std::vector<uint8_t> data(64, 0x00);
  const auto copy = CoreMemcpy(core, data);
  for (size_t chunk = 0; chunk < 8; ++chunk) {
    EXPECT_EQ(copy[chunk * 8 + 1], 0x02) << "chunk " << chunk;
    EXPECT_EQ(copy[chunk * 8 + 0], 0x00);
  }
}

TEST(CoreRoutinesTest, SelfInvertingAesRoundTripsOnDefectiveCoreOnly) {
  SimCore bad = HealthyCore(1);
  DefectSpec spec = AlwaysFire(ExecUnit::kAes, DefectEffect::kRconCorrupt);
  spec.opcode_mask = 1ull << kAesOpRcon;
  bad.AddDefect(spec);
  SimCore good = HealthyCore(2);

  Rng rng(10);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  const auto plaintext = RandomBytes(rng, 128);

  const auto ciphertext = CoreAesCtr(bad, key, 3, plaintext);
  // Same-core round trip: identity.
  EXPECT_EQ(CoreAesCtr(bad, key, 3, ciphertext), plaintext);
  // Cross-core: gibberish in both directions.
  EXPECT_NE(CoreAesCtr(good, key, 3, ciphertext), plaintext);
  EXPECT_NE(ciphertext, CoreAesCtr(good, key, 3, plaintext));
}

// --- Workload corpus ------------------------------------------------------------------------

class WorkloadKindTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadKindTest, HealthyCoreProducesNoSymptoms) {
  const auto kind = static_cast<WorkloadKind>(GetParam());
  WorkloadOptions options;
  options.payload_bytes = 512;
  options.check_probability = 1.0;
  auto workload = MakeWorkload(kind, options);
  SimCore core = HealthyCore();
  Rng rng(100 + GetParam());
  for (int i = 0; i < 10; ++i) {
    const WorkloadResult result = workload->Run(core, rng);
    EXPECT_EQ(static_cast<int>(result.symptom), static_cast<int>(Symptom::kNone))
        << WorkloadKindName(kind) << " iteration " << i;
    EXPECT_FALSE(result.wrong_output);
    EXPECT_GT(result.ops, 0u);
  }
}

TEST_P(WorkloadKindTest, NameAndUnitsAreDeclared) {
  const auto kind = static_cast<WorkloadKind>(GetParam());
  auto workload = MakeWorkload(kind, WorkloadOptions{});
  EXPECT_EQ(workload->name(), WorkloadKindName(kind));
  EXPECT_FALSE(workload->UnitsExercised().empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WorkloadKindTest, ::testing::Range(0, kWorkloadKindCount));

// Pairs each workload with a defect in a unit it exercises and expects observable trouble.
struct FaultCase {
  WorkloadKind kind;
  ExecUnit unit;
  DefectEffect effect;
};

class WorkloadFaultTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(WorkloadFaultTest, DefectInExercisedUnitCausesWrongOutputs) {
  const FaultCase& fault = GetParam();
  WorkloadOptions options;
  options.payload_bytes = 512;
  options.check_probability = 1.0;
  options.late_check_fraction = 0.0;
  auto workload = MakeWorkload(fault.kind, options);

  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(fault.unit, fault.effect, 0.02);
  // For FP results a low mantissa bit is numerically invisible; flip a high one.
  spec.bit_index = fault.unit == ExecUnit::kFp ? 50 : 3;
  core.AddDefect(spec);

  Rng rng(7);
  int troubled = 0;
  for (int i = 0; i < 60; ++i) {
    const WorkloadResult result = workload->Run(core, rng);
    if (result.wrong_output || result.symptom != Symptom::kNone) {
      ++troubled;
    }
  }
  EXPECT_GT(troubled, 0) << WorkloadKindName(fault.kind) << " never misbehaved under a defect in "
                         << ExecUnitName(fault.unit);
}

INSTANTIATE_TEST_SUITE_P(
    Pairings, WorkloadFaultTest,
    ::testing::Values(FaultCase{WorkloadKind::kCompression, ExecUnit::kCopy, DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kHash, ExecUnit::kIntMul, DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kCrypto, ExecUnit::kAes, DefectEffect::kRandomWrong},
                      FaultCase{WorkloadKind::kMemcpy, ExecUnit::kCopy, DefectEffect::kStuckSet},
                      FaultCase{WorkloadKind::kLocking, ExecUnit::kAtomic,
                                DefectEffect::kCasDropStore},
                      FaultCase{WorkloadKind::kSorting, ExecUnit::kStore, DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kMatmul, ExecUnit::kFp, DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kGarbageCollect, ExecUnit::kLoad,
                                DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kDbIndex, ExecUnit::kLoad, DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kKernel, ExecUnit::kIntAlu,
                                DefectEffect::kRandomWrong},
                      FaultCase{WorkloadKind::kVectorScan, ExecUnit::kVector,
                                DefectEffect::kBitFlip},
                      FaultCase{WorkloadKind::kArithmetic, ExecUnit::kIntDiv,
                                DefectEffect::kBitFlip}));

TEST(WorkloadTest, NoCheckingMeansSilentCorruption) {
  WorkloadOptions options;
  options.payload_bytes = 256;
  options.check_probability = 0.0;  // application never checks
  auto workload = MakeWorkload(WorkloadKind::kMemcpy, options);
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.2));
  Rng rng(8);
  int silent = 0;
  int detected = 0;
  for (int i = 0; i < 50; ++i) {
    const WorkloadResult result = workload->Run(core, rng);
    if (result.symptom == Symptom::kSilentCorruption) {
      ++silent;
    }
    if (result.symptom == Symptom::kDetectedImmediately ||
        result.symptom == Symptom::kDetectedLate) {
      ++detected;
    }
  }
  EXPECT_GT(silent, 0);
  EXPECT_EQ(detected, 0) << "no checks -> nothing detected";
}

TEST(WorkloadTest, FullCheckingConvertsSilentToDetected) {
  WorkloadOptions options;
  options.payload_bytes = 256;
  options.check_probability = 1.0;
  options.late_check_fraction = 0.0;
  auto workload = MakeWorkload(WorkloadKind::kMemcpy, options);
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.2));
  Rng rng(9);
  int silent = 0;
  int detected = 0;
  for (int i = 0; i < 50; ++i) {
    const WorkloadResult result = workload->Run(core, rng);
    silent += result.symptom == Symptom::kSilentCorruption ? 1 : 0;
    detected += result.symptom == Symptom::kDetectedImmediately ? 1 : 0;
  }
  EXPECT_EQ(silent, 0);
  EXPECT_GT(detected, 0);
}

TEST(WorkloadTest, LateCheckFractionProducesLateDetections) {
  WorkloadOptions options;
  options.payload_bytes = 256;
  options.check_probability = 1.0;
  options.late_check_fraction = 1.0;  // every catch is too late to retry
  auto workload = MakeWorkload(WorkloadKind::kMemcpy, options);
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.3));
  Rng rng(10);
  int late = 0;
  int immediate = 0;
  for (int i = 0; i < 50; ++i) {
    const WorkloadResult result = workload->Run(core, rng);
    late += result.symptom == Symptom::kDetectedLate ? 1 : 0;
    immediate += result.symptom == Symptom::kDetectedImmediately ? 1 : 0;
  }
  EXPECT_GT(late, 0);
  EXPECT_EQ(immediate, 0);
}

TEST(WorkloadTest, CryptoSameCoreCheckBlindToSelfInvertingAes) {
  // E10's core observation at the workload level: the crypto workload self-check is a
  // same-core round trip, so a self-inverting key schedule slips through as SILENT corruption.
  WorkloadOptions options;
  options.payload_bytes = 256;
  options.check_probability = 1.0;
  auto workload = MakeWorkload(WorkloadKind::kCrypto, options);
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kAes, DefectEffect::kRconCorrupt);
  spec.opcode_mask = 1ull << kAesOpRcon;
  core.AddDefect(spec);
  Rng rng(11);
  int silent = 0;
  for (int i = 0; i < 20; ++i) {
    const WorkloadResult result = workload->Run(core, rng);
    EXPECT_TRUE(result.wrong_output) << "every ciphertext is wrong";
    silent += result.symptom == Symptom::kSilentCorruption ? 1 : 0;
  }
  EXPECT_EQ(silent, 20) << "same-core round trip must never catch the self-inverting defect";
}

TEST(WorkloadTest, MachineCheckFractionSurfacesAsMceSymptom) {
  WorkloadOptions options;
  options.payload_bytes = 256;
  auto workload = MakeWorkload(WorkloadKind::kMemcpy, options);
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.1);
  spec.machine_check_fraction = 1.0;
  core.AddDefect(spec);
  Rng rng(12);
  int mce = 0;
  for (int i = 0; i < 50; ++i) {
    mce += workload->Run(core, rng).symptom == Symptom::kMachineCheck ? 1 : 0;
  }
  EXPECT_GT(mce, 0);
}

TEST(WorkloadTest, StandardCorpusCoversAllKinds) {
  const auto corpus = BuildStandardCorpus(WorkloadOptions{});
  ASSERT_EQ(corpus.size(), static_cast<size_t>(kWorkloadKindCount));
  std::set<std::string> names;
  for (const auto& workload : corpus) {
    names.insert(workload->name());
  }
  EXPECT_EQ(names.size(), corpus.size());
}

TEST(WorkloadTest, SymptomNamesAndObservability) {
  EXPECT_STREQ(SymptomName(Symptom::kSilentCorruption), "silent_corruption");
  EXPECT_FALSE(SymptomObservable(Symptom::kNone));
  EXPECT_FALSE(SymptomObservable(Symptom::kSilentCorruption));
  EXPECT_TRUE(SymptomObservable(Symptom::kCrash));
  EXPECT_TRUE(SymptomObservable(Symptom::kMachineCheck));
  EXPECT_TRUE(SymptomObservable(Symptom::kDetectedImmediately));
  EXPECT_TRUE(SymptomObservable(Symptom::kDetectedLate));
}

// --- Stress battery --------------------------------------------------------------------------

TEST(StressTest, HealthyCorePassesFullBattery) {
  SimCore core = HealthyCore();
  Rng rng(13);
  StressOptions options;
  options.iterations_per_unit = 64;
  const StressReport report = RunStressBattery(core, rng, options);
  EXPECT_TRUE(report.passed());
  EXPECT_TRUE(report.FailedUnits().empty());
  EXPECT_EQ(report.per_unit.size(), static_cast<size_t>(kExecUnitCount));
  EXPECT_GT(report.total_ops, 0u);
}

class StressUnitTest : public ::testing::TestWithParam<int> {};

TEST_P(StressUnitTest, DefectiveUnitIsCaught) {
  const auto unit = static_cast<ExecUnit>(GetParam());
  SimCore core = HealthyCore();
  DefectSpec spec = AlwaysFire(unit, DefectEffect::kBitFlip, 0.5);
  if (unit == ExecUnit::kAtomic) {
    spec.effect = DefectEffect::kCasDropStore;
  }
  if (unit == ExecUnit::kAes) {
    spec.effect = DefectEffect::kRconCorrupt;
    spec.opcode_mask = 1ull << kAesOpRcon;
  }
  core.AddDefect(spec);
  Rng rng(14);
  const UnitStressResult result = StressUnit(core, rng, unit, 128);
  EXPECT_FALSE(result.passed()) << ExecUnitName(unit);
  EXPECT_GT(result.mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllUnits, StressUnitTest, ::testing::Range(0, kExecUnitCount));

TEST(StressTest, RestrictedCoverageMissesUncoveredUnit) {
  SimCore core = HealthyCore();
  core.AddDefect(AlwaysFire(ExecUnit::kVector, DefectEffect::kBitFlip, 1.0));
  Rng rng(15);
  StressOptions options;
  options.iterations_per_unit = 64;
  options.units = {ExecUnit::kIntAlu, ExecUnit::kLoad};  // vector test not yet developed
  const StressReport report = RunStressBattery(core, rng, options);
  EXPECT_TRUE(report.passed()) << "a zero-day defect evades a battery that can't test its unit";
}

TEST(StressTest, FvtSweepCatchesCornerConditionDefect) {
  // Defect only fires at the low-voltage corner: nominal-only screening misses it, the sweep
  // finds it.
  SimCore core = HealthyCore();
  core.set_dvfs(DvfsCurve{1.0, 3.5, 0.65, 1.10});
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip, 1e-7);
  spec.fvt.volt_slope = 60.0;  // ~e^15 at the droop corner
  core.AddDefect(spec);
  Rng rng(16);

  StressOptions nominal_only;
  nominal_only.iterations_per_unit = 256;
  nominal_only.units = {ExecUnit::kIntAlu};
  core.set_operating_point(OperatingPoint{2.5, 60.0});
  EXPECT_TRUE(RunStressBattery(core, rng, nominal_only).passed());

  StressOptions sweep = nominal_only;
  sweep.sweep = StandardScreeningSweep();
  const StressReport swept = RunStressBattery(core, rng, sweep);
  EXPECT_FALSE(swept.passed()) << "the droop corner must expose the voltage-sensitive defect";
}

TEST(StressTest, BatteryRestoresOperatingPoint) {
  SimCore core = HealthyCore();
  const OperatingPoint original{2.0, 55.0};
  core.set_operating_point(original);
  Rng rng(17);
  StressOptions options;
  options.iterations_per_unit = 8;
  options.sweep = StandardScreeningSweep();
  RunStressBattery(core, rng, options);
  EXPECT_EQ(core.operating_point(), original);
}

TEST(StressTest, SweepSplitsIterationBudget) {
  SimCore core = HealthyCore();
  Rng rng(18);
  StressOptions one_point;
  one_point.iterations_per_unit = 90;
  one_point.units = {ExecUnit::kIntAlu};
  const StressReport single = RunStressBattery(core, rng, one_point);

  StressOptions three_points = one_point;
  three_points.sweep = StandardScreeningSweep();
  const StressReport swept = RunStressBattery(core, rng, three_points);
  EXPECT_EQ(single.per_unit[0].iterations, swept.per_unit[0].iterations)
      << "sweeping must not triple the iteration cost";
}

}  // namespace
}  // namespace mercurial
