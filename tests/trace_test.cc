// Unit tests for the incident flight recorder (src/telemetry/trace.h): recorder semantics
// (shard routing, ring overwrite, per-kind sampling, conservation), the deterministic shard
// merge, the CRC-framed codec's refusal to parse corrupted or clipped payloads (mirroring the
// checkpoint framing tests in mitigate_test.cc), the TraceQuery read API, and the JSONL/CSV
// exports.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/fleet_study.h"
#include "src/substrate/checksum.h"
#include "src/telemetry/trace.h"

namespace mercurial {
namespace {

// A small recorder with events spread over shards, ticks, and kinds — the codec fixture.
TraceRecorder MakeBusyRecorder() {
  TraceOptions options;
  options.enabled = true;
  options.ring_capacity = 64;
  TraceRecorder recorder(options, /*core_count=*/16, /*shards=*/4);
  recorder.SetTickContext(SimTime::Days(1), /*epoch=*/1);
  recorder.Emit(0, TraceEventKind::kDefectFired, TraceCause::kCorruption, 3);
  recorder.Emit(5, TraceEventKind::kSignalEmitted, TraceCause::kCrashSignal);
  recorder.Emit(9, TraceEventKind::kSuspicionRaised, TraceCause::kConcentration, 2100);
  recorder.SetTickContext(SimTime::Days(2), /*epoch=*/2);
  recorder.Emit(9, TraceEventKind::kQuarantineAdmit, TraceCause::kAdmitted, 1);
  recorder.Emit(9, TraceEventKind::kInterrogationStart, TraceCause::kScheduled, 1);
  recorder.Emit(9, TraceEventKind::kInterrogationVerdict, TraceCause::kConfessed, 1);
  recorder.Emit(9, TraceEventKind::kConviction, TraceCause::kConfessed, 2);
  recorder.SetTickContext(SimTime::Days(3), /*epoch=*/3);
  recorder.Emit(9, TraceEventKind::kRepairPass, TraceCause::kRepairDone, 40);
  recorder.Emit(15, TraceEventKind::kQuarantineShed, TraceCause::kPipelineFull, 64);
  return recorder;
}

// --- Recorder semantics -----------------------------------------------------------------------

TEST(TraceRecorderTest, ShardRoutingMatchesPartitionCores) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t core_count = 1 + rng.UniformInt(0, 4000);
    const int shards = static_cast<int>(rng.UniformInt(1, 32));
    TraceOptions options;
    options.enabled = true;
    const TraceRecorder recorder(options, core_count, shards);
    const auto ranges = PartitionCores(core_count, shards);
    for (int probe = 0; probe < 50; ++probe) {
      const uint64_t core = rng.UniformInt(0, core_count - 1);
      size_t expected = 0;
      for (size_t k = 0; k < ranges.size(); ++k) {
        if (core >= ranges[k].begin && core < ranges[k].end) {
          expected = k;
          break;
        }
      }
      ASSERT_EQ(recorder.shard_of(core), expected)
          << "core " << core << " of " << core_count << " across " << shards << " shards";
    }
  }
}

TEST(TraceRecorderTest, RingOverwriteDropsOldestAndKeepsConservation) {
  TraceOptions options;
  options.enabled = true;
  options.ring_capacity = 4;
  TraceRecorder recorder(options, /*core_count=*/8, /*shards=*/1);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Emit(0, TraceEventKind::kDefectFired, TraceCause::kCorruption, /*detail=*/i);
  }
  const IncidentTrace trace = recorder.Assemble();
  EXPECT_EQ(trace.counters.events_emitted, 10u);
  EXPECT_EQ(trace.counters.events_recorded, 4u);
  EXPECT_EQ(trace.counters.events_dropped, 6u);
  EXPECT_EQ(trace.counters.events_sampled_out, 0u);
  // The survivors are the newest four, unwrapped oldest-first.
  ASSERT_EQ(trace.events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trace.events[i].detail, 6 + i);
  }
}

TEST(TraceRecorderTest, PerKindSamplingThinsDeterministically) {
  TraceOptions options;
  options.enabled = true;
  options.sample_every[static_cast<size_t>(TraceEventKind::kDefectFired)] = 3;
  options.sample_every[static_cast<size_t>(TraceEventKind::kSignalEmitted)] = 0;  // suppress
  TraceRecorder recorder(options, /*core_count=*/8, /*shards=*/1);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Emit(0, TraceEventKind::kDefectFired, TraceCause::kCorruption, i);
  }
  for (uint64_t i = 0; i < 5; ++i) {
    recorder.Emit(0, TraceEventKind::kSignalEmitted, TraceCause::kCrashSignal, i);
  }
  const IncidentTrace trace = recorder.Assemble();
  // Every 3rd defect fire survives (0, 3, 6, 9); every signal is suppressed but accounted.
  ASSERT_EQ(trace.events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trace.events[i].detail, 3 * i);
  }
  EXPECT_EQ(trace.counters.events_emitted, 4u);
  EXPECT_EQ(trace.counters.events_recorded, 4u);
  EXPECT_EQ(trace.counters.events_sampled_out, 11u);
  EXPECT_EQ(trace.counters.events_dropped, 0u);
}

TEST(TraceRecorderTest, AssembleOrdersByTimeThenShard) {
  TraceOptions options;
  options.enabled = true;
  TraceRecorder recorder(options, /*core_count=*/8, /*shards=*/2);  // cores 0-3 | 4-7
  recorder.SetTickContext(SimTime::Days(1), 1);
  recorder.Emit(6, TraceEventKind::kSignalEmitted, TraceCause::kCrashSignal, 0);  // shard 1
  recorder.Emit(1, TraceEventKind::kDefectFired, TraceCause::kCorruption, 1);     // shard 0
  recorder.SetTickContext(SimTime::Days(2), 2);
  recorder.Emit(5, TraceEventKind::kDefectFired, TraceCause::kCorruption, 2);     // shard 1
  recorder.Emit(0, TraceEventKind::kDefectFired, TraceCause::kCorruption, 3);     // shard 0
  const IncidentTrace trace = recorder.Assemble();
  ASSERT_EQ(trace.events.size(), 4u);
  // Within each time group, shard 0's events precede shard 1's regardless of emission order.
  EXPECT_EQ(trace.events[0].core, 1u);
  EXPECT_EQ(trace.events[1].core, 6u);
  EXPECT_EQ(trace.events[2].core, 0u);
  EXPECT_EQ(trace.events[3].core, 5u);
  EXPECT_EQ(trace.events[0].epoch, 1u);
  EXPECT_EQ(trace.events[2].epoch, 2u);
}

TEST(TraceOptionsTest, ValidateRejectsZeroRingCapacity) {
  TraceOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.ring_capacity = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

// --- Codec round trip and corruption (mirrors CheckpointFrameTest) ----------------------------

TEST(TraceCodecTest, RoundTripRecoversEventsAndCounters) {
  const IncidentTrace golden = MakeBusyRecorder().Assemble();
  ASSERT_GT(golden.events.size(), 0u);
  const std::vector<uint8_t> bytes = SerializeTrace(golden);
  const auto parsed = ParseTrace(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->shards, golden.shards);
  EXPECT_TRUE(parsed->counters == golden.counters);
  ASSERT_EQ(parsed->events.size(), golden.events.size());
  for (size_t i = 0; i < golden.events.size(); ++i) {
    EXPECT_TRUE(parsed->events[i] == golden.events[i]) << "event " << i;
  }
}

TEST(TraceCodecTest, EmptyTraceRoundTrips) {
  TraceOptions options;
  options.enabled = true;
  const IncidentTrace empty = TraceRecorder(options, 4, 2).Assemble();
  const auto parsed = ParseTrace(SerializeTrace(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->events.empty());
  EXPECT_EQ(parsed->shards, 2u);
}

TEST(TraceCodecTest, EveryBitFlipFailsLoudly) {
  // A trace is incident evidence: parsing must never yield silently-wrong events. Flipping
  // ANY single bit — magic, counters, event payload, or the CRC itself — must be DATA_LOSS.
  const std::vector<uint8_t> golden = SerializeTrace(MakeBusyRecorder().Assemble());
  for (size_t byte = 0; byte < golden.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = golden;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      const auto parsed = ParseTrace(mutated);
      ASSERT_FALSE(parsed.ok()) << "bit " << bit << " of byte " << byte << " parsed silently";
      EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(TraceCodecTest, EveryTruncationFailsLoudly) {
  const std::vector<uint8_t> golden = SerializeTrace(MakeBusyRecorder().Assemble());
  for (size_t len = 0; len < golden.size(); ++len) {
    const std::vector<uint8_t> truncated(golden.begin(), golden.begin() + len);
    const auto parsed = ParseTrace(truncated);
    ASSERT_FALSE(parsed.ok()) << "truncation to " << len << " bytes parsed silently";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  }
  // Trailing garbage is a framing violation too.
  std::vector<uint8_t> extended = golden;
  extended.push_back(0);
  EXPECT_EQ(ParseTrace(extended).status().code(), StatusCode::kDataLoss);
}

TEST(TraceCodecTest, OutOfRangeKindOrCauseFailsEvenWithValidCrc) {
  // A CRC-consistent frame carrying an enum value this build does not know is still refused:
  // the range check guards against decoding a future (or corrupt-but-CRC-colliding) trace
  // into aliased enum values. Patch the byte, then re-seal the CRC so only the range check
  // can object.
  const std::vector<uint8_t> golden = SerializeTrace(MakeBusyRecorder().Assemble());
  constexpr size_t kHeaderBytes = 52;  // magic, version, shards (u32 each) + 5 u64 counters
  constexpr size_t kKindOffset = kHeaderBytes + 8 + 8 + 8;  // first event: time, core, epoch
  for (const auto& [offset, bad] :
       {std::pair<size_t, uint8_t>{kKindOffset, static_cast<uint8_t>(kTraceEventKindCount)},
        std::pair<size_t, uint8_t>{kKindOffset + 1, static_cast<uint8_t>(kTraceCauseCount)}}) {
    std::vector<uint8_t> mutated = golden;
    mutated[offset] = bad;
    const uint32_t crc = Crc32(mutated.data(), mutated.size() - 4);
    for (int i = 0; i < 4; ++i) {
      mutated[mutated.size() - 4 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(crc >> (8 * i));
    }
    const auto parsed = ParseTrace(mutated);
    ASSERT_FALSE(parsed.ok()) << "out-of-range byte at offset " << offset;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  }
}

// --- TraceQuery -------------------------------------------------------------------------------

TEST(TraceQueryTest, CoreTimelineAndTimeWindowSliceTheTrace) {
  const IncidentTrace trace = MakeBusyRecorder().Assemble();
  const TraceQuery query(trace);

  const std::vector<TraceEvent> core9 = query.CoreTimeline(9);
  ASSERT_EQ(core9.size(), 6u);
  EXPECT_EQ(core9.front().kind, TraceEventKind::kSuspicionRaised);
  EXPECT_EQ(core9.back().kind, TraceEventKind::kRepairPass);
  EXPECT_TRUE(query.CoreTimeline(1234).empty());

  const std::vector<TraceEvent> day2 = query.TimeWindow(SimTime::Days(2), SimTime::Days(3));
  ASSERT_EQ(day2.size(), 4u);
  for (const TraceEvent& event : day2) {
    EXPECT_EQ(event.epoch, 2u);
  }
}

TEST(TraceQueryTest, CauseChainWalksBackFromConviction) {
  const IncidentTrace trace = MakeBusyRecorder().Assemble();
  const TraceQuery query(trace);

  const std::vector<uint64_t> convicted = query.ConvictedCores();
  ASSERT_EQ(convicted, std::vector<uint64_t>{9});

  const std::vector<TraceEvent> chain = query.CauseChain(9);
  ASSERT_EQ(chain.size(), 5u);  // suspicion .. conviction; the repair pass is after it
  EXPECT_EQ(chain.front().kind, TraceEventKind::kSuspicionRaised);
  EXPECT_EQ(chain.back().kind, TraceEventKind::kConviction);
  EXPECT_TRUE(query.CauseChain(0).empty()) << "unconvicted cores have no cause chain";
  EXPECT_TRUE(query.CauseChain(1234).empty()) << "unknown cores have no cause chain";
}

TEST(TraceQueryTest, EveryKindAndCauseHasASymbolicName) {
  // Exports and the CLI timeline print these names; a new enum value without one would show
  // up as "unknown" in every artifact, so pin the full range (and the out-of-range fallback).
  std::set<std::string> kind_names;
  for (size_t k = 0; k < kTraceEventKindCount; ++k) {
    const char* name = TraceEventKindName(static_cast<TraceEventKind>(k));
    EXPECT_STRNE(name, "unknown") << "kind " << k;
    kind_names.insert(name);
  }
  EXPECT_EQ(kind_names.size(), kTraceEventKindCount) << "duplicate kind names";
  std::set<std::string> cause_names;
  for (size_t c = 0; c < kTraceCauseCount; ++c) {
    const char* name = TraceCauseName(static_cast<TraceCause>(c));
    EXPECT_STRNE(name, "unknown") << "cause " << c;
    cause_names.insert(name);
  }
  EXPECT_EQ(cause_names.size(), kTraceCauseCount) << "duplicate cause names";
  EXPECT_STREQ(TraceEventKindName(static_cast<TraceEventKind>(kTraceEventKindCount)),
               "unknown");
  EXPECT_STREQ(TraceCauseName(static_cast<TraceCause>(kTraceCauseCount)), "unknown");
}

// --- Exports ----------------------------------------------------------------------------------

TEST(TraceExportTest, JsonlEmitsOneObjectPerEventWithSymbolicNames) {
  const IncidentTrace trace = MakeBusyRecorder().Assemble();
  const std::string jsonl = TraceToJsonl(trace);
  size_t lines = 0;
  for (const char c : jsonl) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, trace.events.size());
  EXPECT_NE(jsonl.find("\"kind\":\"conviction\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cause\":\"confessed\""), std::string::npos);
}

TEST(TraceExportTest, CsvEmitsHeaderPlusOneRowPerEvent) {
  const IncidentTrace trace = MakeBusyRecorder().Assemble();
  const std::string csv = TraceToCsv(trace);
  size_t lines = 0;
  for (const char c : csv) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, trace.events.size() + 1);
  EXPECT_EQ(csv.rfind("time_s,core,epoch,kind,cause,detail", 0), 0u);
}

}  // namespace
}  // namespace mercurial
