// Tests for src/accel: the SIMT accelerator model and its CEE detection strategies.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/accel/accelerator.h"
#include "src/common/rng.h"

namespace mercurial {
namespace {

std::vector<double> RandomVector(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.NextDouble() * 10.0 - 5.0;
  }
  return v;
}

LaneDefectSpec DeterministicLaneDefect(uint32_t lane, int bit = 42) {
  LaneDefectSpec spec;
  spec.lane = lane;
  spec.fire_rate = 1.0;
  spec.bit_index = bit;
  return spec;
}

TEST(AcceleratorTest, HealthyElementwiseMatchesGolden) {
  SimAccelerator device(32, Rng(1));
  Rng rng(2);
  const auto a = RandomVector(rng, 100);
  const auto b = RandomVector(rng, 100);
  const auto sum = device.Elementwise(LaneOp::kAdd, a, b);
  const auto prod = device.Elementwise(LaneOp::kMul, a, b);
  const auto relu = device.Elementwise(LaneOp::kRelu, a, b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(sum[i], a[i] + b[i]);
    EXPECT_DOUBLE_EQ(prod[i], a[i] * b[i]);
    EXPECT_DOUBLE_EQ(relu[i], a[i] > 0.0 ? a[i] : 0.0);
  }
  EXPECT_EQ(device.counters().kernels_launched, 3u);
  EXPECT_EQ(device.counters().lane_ops, 300u);
  EXPECT_EQ(device.counters().corruptions, 0u);
}

TEST(AcceleratorTest, HealthyMatmulMatchesGolden) {
  SimAccelerator device(16, Rng(3));
  Rng rng(4);
  const size_t m = 4, k = 5, n = 3;
  const auto a = RandomVector(rng, m * k);
  const auto b = RandomVector(rng, k * n);
  const auto c = device.TiledMatmul(a, b, m, k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double want = 0.0;
      for (size_t x = 0; x < k; ++x) {
        want += a[i * k + x] * b[x * n + j];
      }
      EXPECT_NEAR(c[i * n + j], want, 1e-12);
    }
  }
}

TEST(AcceleratorTest, HealthyReduceMatchesGolden) {
  SimAccelerator device(8, Rng(5));
  Rng rng(6);
  for (size_t n : {1u, 2u, 3u, 7u, 8u, 100u}) {
    const auto values = RandomVector(rng, n);
    double want = 0.0;
    // Golden: same pairwise tree order as the device (FP addition is not associative).
    std::vector<double> level = values;
    while (level.size() > 1) {
      std::vector<double> next((level.size() + 1) / 2);
      for (size_t i = 0; i + 1 < level.size(); i += 2) {
        next[i / 2] = level[i] + level[i + 1];
      }
      if (level.size() % 2 == 1) {
        next.back() = level.back();
      }
      level = std::move(next);
    }
    want = level.empty() ? 0.0 : level[0];
    EXPECT_DOUBLE_EQ(device.ReduceSum(values), want) << "n=" << n;
  }
}

TEST(AcceleratorTest, DefectiveLaneCorruptsOnlyItsStride) {
  SimAccelerator device(8, Rng(7));
  device.AddLaneDefect(DeterministicLaneDefect(/*lane=*/3));
  Rng rng(8);
  const auto a = RandomVector(rng, 64);
  const auto b = RandomVector(rng, 64);
  const auto out = device.Elementwise(LaneOp::kAdd, a, b);
  for (size_t i = 0; i < a.size(); ++i) {
    if (i % 8 == 3) {
      EXPECT_NE(out[i], a[i] + b[i]) << "element " << i << " runs on the defective lane";
    } else {
      EXPECT_DOUBLE_EQ(out[i], a[i] + b[i]) << "element " << i << " runs on healthy lanes";
    }
  }
}

TEST(AcceleratorTest, LaneOffsetShiftsTheStride) {
  SimAccelerator device(8, Rng(9));
  device.AddLaneDefect(DeterministicLaneDefect(3));
  Rng rng(10);
  const auto a = RandomVector(rng, 32);
  const auto b = RandomVector(rng, 32);
  const auto out = device.Elementwise(LaneOp::kAdd, a, b, /*lane_offset=*/1);
  for (size_t i = 0; i < a.size(); ++i) {
    const bool on_bad_lane = (i + 1) % 8 == 3;
    EXPECT_EQ(out[i] != a[i] + b[i], on_bad_lane) << "element " << i;
  }
}

TEST(AcceleratorTest, OpMaskRestrictsDefect) {
  SimAccelerator device(4, Rng(11));
  LaneDefectSpec spec = DeterministicLaneDefect(0);
  spec.op_mask = 1ull << static_cast<int>(LaneOp::kMul);  // only multiplies are broken
  device.AddLaneDefect(spec);
  Rng rng(12);
  const auto a = RandomVector(rng, 16);
  const auto b = RandomVector(rng, 16);
  const auto sums = device.Elementwise(LaneOp::kAdd, a, b);
  const auto products = device.Elementwise(LaneOp::kMul, a, b);
  EXPECT_DOUBLE_EQ(sums[0], a[0] + b[0]);
  EXPECT_NE(products[0], a[0] * b[0]);
}

TEST(AcceleratorTest, RepeatCheckBlindToDeterministicLaneDefect) {
  // The accelerator analog of the same-core AES check: re-running with the same lane
  // assignment reproduces the same corruption bit-for-bit.
  SimAccelerator device(8, Rng(13));
  device.AddLaneDefect(DeterministicLaneDefect(5, /*bit=*/-1));  // deterministic wrong value
  Rng rng(14);
  const auto a = RandomVector(rng, 64);
  const auto b = RandomVector(rng, 64);
  const AccelCheckResult result = CheckByRepeat(device, LaneOp::kMul, a, b);
  EXPECT_FALSE(result.corruption_detected);
}

TEST(AcceleratorTest, RotationCheckCatchesDeterministicLaneDefect) {
  SimAccelerator device(8, Rng(15));
  device.AddLaneDefect(DeterministicLaneDefect(5, /*bit=*/-1));
  Rng rng(16);
  const auto a = RandomVector(rng, 64);
  const auto b = RandomVector(rng, 64);
  const AccelCheckResult result = CheckByRotation(device, LaneOp::kMul, a, b);
  EXPECT_TRUE(result.corruption_detected);
  // The true culprit (lane 5) must be among the implicated lanes.
  EXPECT_TRUE(std::find(result.suspect_lanes.begin(), result.suspect_lanes.end(), 5u) !=
              result.suspect_lanes.end());
}

TEST(AcceleratorTest, RotationCheckQuietOnHealthyDevice) {
  SimAccelerator device(8, Rng(17));
  Rng rng(18);
  const auto a = RandomVector(rng, 64);
  const auto b = RandomVector(rng, 64);
  EXPECT_FALSE(CheckByRotation(device, LaneOp::kFma, a, b).corruption_detected);
  EXPECT_FALSE(CheckByRepeat(device, LaneOp::kFma, a, b).corruption_detected);
}

TEST(AcceleratorTest, ScreenLanesFindsExactlyTheDefectiveLanes) {
  SimAccelerator device(32, Rng(19));
  device.AddLaneDefect(DeterministicLaneDefect(7));
  device.AddLaneDefect(DeterministicLaneDefect(21));
  Rng rng(20);
  const auto failed = ScreenLanes(device, rng, /*probes_per_lane=*/32);
  EXPECT_EQ(failed, (std::vector<uint32_t>{7, 21}));
}

TEST(AcceleratorTest, ScreenLanesCleanOnHealthyDevice) {
  SimAccelerator device(32, Rng(21));
  Rng rng(22);
  EXPECT_TRUE(ScreenLanes(device, rng, 16).empty());
}

TEST(AcceleratorTest, SporadicDefectNeedsEnoughProbes) {
  SimAccelerator device(16, Rng(23));
  LaneDefectSpec spec;
  spec.lane = 4;
  spec.fire_rate = 0.05;
  device.AddLaneDefect(spec);
  Rng rng(24);
  // 200 probes at 5% miss with probability ~3e-5.
  const auto failed = ScreenLanes(device, rng, 200);
  EXPECT_EQ(failed, std::vector<uint32_t>{4});
}

TEST(AcceleratorTest, MatmulCorruptionConfinedToDefectiveLaneCells) {
  SimAccelerator device(8, Rng(25));
  device.AddLaneDefect(DeterministicLaneDefect(2, /*bit=*/50));
  Rng rng(26);
  const size_t m = 8, k = 4, n = 8;
  const auto a = RandomVector(rng, m * k);
  const auto b = RandomVector(rng, k * n);
  const auto c = device.TiledMatmul(a, b, m, k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double want = 0.0;
      for (size_t x = 0; x < k; ++x) {
        want += a[i * k + x] * b[x * n + j];
      }
      const bool defective_cell = (i * n + j) % 8 == 2;
      if (!defective_cell) {
        EXPECT_NEAR(c[i * n + j], want, 1e-12) << "healthy cell (" << i << "," << j << ")";
      }
    }
  }
  EXPECT_GT(device.counters().corruptions, 0u);
}

TEST(AcceleratorTest, LaneOpNames) {
  for (int op = 0; op <= 4; ++op) {
    EXPECT_STRNE(LaneOpName(static_cast<LaneOp>(op)), "unknown");
  }
}

}  // namespace
}  // namespace mercurial
