// Tests for src/substrate/btree.h: the ordered index the db_index workload corrupts.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/core.h"
#include "src/substrate/btree.h"

namespace mercurial {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Lookup(42).has_value());
  EXPECT_FALSE(tree.Erase(42));
  EXPECT_TRUE(tree.Scan(0, ~0ull).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, InsertAndLookup) {
  BTree tree;
  for (uint64_t k = 0; k < 100; ++k) {
    tree.Insert(k * 3, k * 30);
  }
  EXPECT_EQ(tree.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    const auto value = tree.Lookup(k * 3);
    ASSERT_TRUE(value.has_value()) << "key " << k * 3;
    EXPECT_EQ(*value, k * 30);
    EXPECT_FALSE(tree.Lookup(k * 3 + 1).has_value());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(tree.height(), 1) << "100 keys at fanout 8 must have split";
}

TEST(BTreeTest, OverwriteKeepsSize) {
  BTree tree;
  tree.Insert(5, 50);
  tree.Insert(5, 51);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Lookup(5), 51u);
}

TEST(BTreeTest, ScanReturnsSortedRange) {
  BTree tree;
  Rng rng(1);
  std::set<uint64_t> keys;
  while (keys.size() < 300) {
    keys.insert(rng.UniformInt(0, 10000));
  }
  for (uint64_t k : keys) {
    tree.Insert(k, k + 1);
  }
  const auto all = tree.Scan(0, 10000);
  ASSERT_EQ(all.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));

  const auto mid = tree.Scan(2500, 7500);
  size_t expected = 0;
  for (uint64_t k : keys) {
    expected += (k >= 2500 && k <= 7500) ? 1 : 0;
  }
  EXPECT_EQ(mid.size(), expected);
  for (const auto& [k, v] : mid) {
    EXPECT_GE(k, 2500u);
    EXPECT_LE(k, 7500u);
    EXPECT_EQ(v, k + 1);
  }
}

TEST(BTreeTest, EraseSimple) {
  BTree tree;
  for (uint64_t k = 0; k < 50; ++k) {
    tree.Insert(k, k);
  }
  EXPECT_TRUE(tree.Erase(25));
  EXPECT_FALSE(tree.Lookup(25).has_value());
  EXPECT_FALSE(tree.Erase(25));
  EXPECT_EQ(tree.size(), 49u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, EraseEverythingAscending) {
  BTree tree;
  for (uint64_t k = 0; k < 200; ++k) {
    tree.Insert(k, k);
  }
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Erase(k)) << "key " << k;
    const Status invariants = tree.CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << "after erasing " << k << ": " << invariants.ToString();
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
}

TEST(BTreeTest, EraseEverythingDescending) {
  BTree tree;
  for (uint64_t k = 0; k < 200; ++k) {
    tree.Insert(k, k);
  }
  for (uint64_t k = 200; k-- > 0;) {
    ASSERT_TRUE(tree.Erase(k)) << "key " << k;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after erasing " << k;
  }
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BTreeTest, RandomizedAgainstStdMap) {
  // Differential test: a long random op sequence against std::map, with invariants verified
  // along the way.
  BTree tree;
  std::map<uint64_t, uint64_t> model;
  Rng rng(7);
  for (int op = 0; op < 5000; ++op) {
    const uint64_t key = rng.UniformInt(0, 499);
    switch (rng.UniformInt(0, 2)) {
      case 0: {  // insert
        const uint64_t value = rng.NextU64();
        tree.Insert(key, value);
        model[key] = value;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(tree.Erase(key), model.erase(key) > 0) << "op " << op << " key " << key;
        break;
      }
      case 2: {  // lookup
        const auto got = tree.Lookup(key);
        const auto want = model.find(key);
        ASSERT_EQ(got.has_value(), want != model.end()) << "op " << op << " key " << key;
        if (got.has_value()) {
          EXPECT_EQ(*got, want->second);
        }
        break;
      }
    }
    if (op % 250 == 0) {
      const Status invariants = tree.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << "op " << op << ": " << invariants.ToString();
      ASSERT_EQ(tree.size(), model.size()) << "op " << op;
    }
  }
  // Final full comparison via scan.
  const auto scanned = tree.Scan(0, ~0ull);
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, v);
    ++i;
  }
}

TEST(BTreeTest, HeightStaysLogarithmic) {
  BTree tree;
  for (uint64_t k = 0; k < 4096; ++k) {
    tree.Insert(k, k);
  }
  // Fanout 8 => height <= ~log4(4096)+1 = 7 even with minimum-fill nodes.
  EXPECT_LE(tree.height(), 7);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, LookupThroughIdentityProbeMatchesLookup) {
  BTree tree;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(rng.UniformInt(0, 5000), i);
  }
  for (uint64_t k = 0; k <= 5000; k += 13) {
    EXPECT_EQ(tree.LookupThrough(k, [](uint64_t x) { return x; }), tree.Lookup(k));
  }
}

TEST(BTreeTest, CorruptedProbeMisroutesLookups) {
  // The §2 incident: "database index corruption leading to some queries... being
  // non-deterministically corrupted". A defective load unit corrupts probed separators.
  BTree tree;
  for (uint64_t k = 0; k < 2000; ++k) {
    tree.Insert(k * 2, k);
  }
  SimCore core(1, Rng(11));
  DefectSpec spec;
  spec.unit = ExecUnit::kLoad;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = 0.02;
  core.AddDefect(spec);

  int wrong = 0;
  for (uint64_t k = 0; k < 2000; ++k) {
    const auto got = tree.LookupThrough(k * 2, [&core](uint64_t x) { return core.Load(x); });
    if (!got.has_value() || *got != k) {
      ++wrong;
    }
  }
  EXPECT_GT(wrong, 0) << "corrupted probes must misroute some queries";
  EXPECT_LT(wrong, 2000) << "...but not all of them";
  // The tree itself is untouched: clean lookups still succeed for every key.
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_EQ(*tree.Lookup(k * 2), k);
  }
}

}  // namespace
}  // namespace mercurial
