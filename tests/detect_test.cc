// Tests for src/detect: report service, confession testing, screening, quarantine policy.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/detect/confession.h"
#include "src/detect/quarantine.h"
#include "src/detect/report_service.h"
#include "src/detect/screening.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {
namespace {

constexpr uint32_t kCoresPerMachine = 48;

CeeReportService MakeService(ReportServiceOptions options = {}) {
  return CeeReportService(options, [](uint64_t) { return kCoresPerMachine; });
}

Signal At(SimTime t, uint64_t machine, uint64_t core,
          SignalType type = SignalType::kAppReport) {
  return Signal{t, machine, core, type};
}

DefectSpec AlwaysFire(ExecUnit unit, DefectEffect effect, double rate = 1.0) {
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = effect;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

// --- Report service ---------------------------------------------------------------------------

TEST(ReportServiceTest, ConcentratedReportsBecomeSuspects) {
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  for (int i = 0; i < 5; ++i) {
    service.Report(At(t, /*machine=*/3, /*core=*/77));
  }
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].core_global, 77u);
  EXPECT_EQ(suspects[0].machine, 3u);
  EXPECT_LT(suspects[0].p_value, 1e-3);
  EXPECT_GE(suspects[0].score, 5.0);
}

TEST(ReportServiceTest, EvenlySpreadReportsAreNotSuspects) {
  // "Reports that are evenly spread across cores probably are not CEEs."
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  for (uint64_t core = 0; core < kCoresPerMachine; ++core) {
    service.Report(At(t, 3, core));
    service.Report(At(t, 3, core));
    service.Report(At(t, 3, core));
  }
  EXPECT_TRUE(service.Suspects(t).empty());
}

TEST(ReportServiceTest, MixedSpreadStillFlagsTheHotCore) {
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  // Background: one report on each of 20 cores; hot core gets 6.
  for (uint64_t core = 0; core < 20; ++core) {
    service.Report(At(t, 5, core));
  }
  for (int i = 0; i < 6; ++i) {
    service.Report(At(t, 5, 7));
  }
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].core_global, 7u);
}

TEST(ReportServiceTest, ScoresDecayOverTime) {
  ReportServiceOptions options;
  options.half_life_days = 7.0;
  CeeReportService service = MakeService(options);
  for (int i = 0; i < 5; ++i) {
    service.Report(At(SimTime::Days(0), 1, 10));
  }
  // After 10 half-lives the mass is gone (also pruned).
  EXPECT_TRUE(service.Suspects(SimTime::Days(70)).empty());
  EXPECT_EQ(service.tracked_cores(), 0u) << "decayed records must be pruned";
}

TEST(ReportServiceTest, FreshReportsSurviveDecay) {
  CeeReportService service = MakeService();
  for (int day = 0; day < 5; ++day) {
    service.Report(At(SimTime::Days(day), 1, 10, SignalType::kMachineCheck));
  }
  const auto suspects = service.Suspects(SimTime::Days(5));
  ASSERT_EQ(suspects.size(), 1u) << "recidivism within the half-life accumulates";
}

TEST(ReportServiceTest, SignalWeightsMatter) {
  // Screen failures (weight 4) reach the suspicion floor faster than crashes (weight 1).
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  service.Report(At(t, 1, 10, SignalType::kScreenFail));
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u) << "one screen failure alone is grounds for suspicion";
  CeeReportService service2 = MakeService();
  service2.Report(At(t, 1, 11, SignalType::kCrash));
  EXPECT_TRUE(service2.Suspects(t).empty()) << "one crash alone is not";
}

TEST(ReportServiceTest, ForgetClearsCore) {
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  for (int i = 0; i < 5; ++i) {
    service.Report(At(t, 1, 10));
  }
  service.Forget(10);
  EXPECT_TRUE(service.Suspects(t).empty());
}

TEST(ReportServiceTest, TotalReportsCounted) {
  CeeReportService service = MakeService();
  for (int i = 0; i < 7; ++i) {
    service.Report(At(SimTime::Days(1), 1, static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(service.total_reports(), 7u);
}

TEST(ReportServiceTest, SingleCoreMachineConcentrationIsDegenerate) {
  // On a single-core machine every report lands on the only core with probability 1, so the
  // uniform null IS the observation: BinomialUpperTail(k, n, 1/1) == 1 and the concentration
  // test can never fire, no matter how many reports pile up. There is no spread to
  // distinguish a CEE from a software bug, so "never a suspect by concentration" is the
  // correct answer — Suspects() skips the test explicitly rather than grinding through it.
  CeeReportService service(ReportServiceOptions{}, [](uint64_t) { return 1u; });
  const SimTime t = SimTime::Days(1);
  for (int i = 0; i < 50; ++i) {
    service.Report(At(t, /*machine=*/9, /*core=*/5));
  }
  EXPECT_TRUE(service.Suspects(t).empty())
      << "p = 1 null: indirect reports alone must never convict a single-core machine";
}

TEST(ReportServiceTest, SingleCoreMachineStillConvictableByDirectEvidence) {
  // The direct-evidence bypass is core-attributed (the screening battery compared against
  // golden on that very core), so it does not need spread and must still work at p = 1.
  CeeReportService service(ReportServiceOptions{}, [](uint64_t) { return 1u; });
  const SimTime t = SimTime::Days(1);
  service.Report(At(t, 9, 5, SignalType::kScreenFail));  // weight 4 >= direct threshold 3
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].core_global, 5u);
  EXPECT_EQ(suspects[0].p_value, 0.0);
}

TEST(ReportServiceTest, PeekEvidenceDecaysWithoutMutating) {
  ReportServiceOptions options;
  options.half_life_days = 14.0;
  CeeReportService service = MakeService(options);
  service.Report(At(SimTime::Days(0), 1, 10, SignalType::kScreenFail));
  const auto fresh = service.PeekEvidence(10, SimTime::Days(0));
  EXPECT_DOUBLE_EQ(fresh.score, 4.0);
  EXPECT_DOUBLE_EQ(fresh.direct_score, 4.0);
  const auto later = service.PeekEvidence(10, SimTime::Days(14));
  EXPECT_DOUBLE_EQ(later.score, 2.0) << "one half-life halves the mass";
  // Peeking far ahead must not advance the record: the same query again answers identically.
  const auto again = service.PeekEvidence(10, SimTime::Days(14));
  EXPECT_DOUBLE_EQ(again.score, later.score);
  EXPECT_DOUBLE_EQ(service.PeekEvidence(999, SimTime::Days(1)).score, 0.0)
      << "untracked cores peek as zero";
}

// --- Confession -----------------------------------------------------------------------------

TEST(ConfessionTest, MercurialCoreConfesses) {
  SimCore core(1, Rng(1));
  core.AddDefect(AlwaysFire(ExecUnit::kVector, DefectEffect::kBitFlip, 0.3));
  ConfessionOptions options;
  options.stress.iterations_per_unit = 128;
  ConfessionTester tester(options);
  Rng rng(2);
  const Confession confession = tester.Interrogate(core, rng);
  EXPECT_TRUE(confession.confessed);
  ASSERT_FALSE(confession.failed_units.empty());
  EXPECT_EQ(static_cast<int>(confession.failed_units[0]), static_cast<int>(ExecUnit::kVector));
  EXPECT_EQ(confession.attempts, 1);
  EXPECT_GT(confession.ops_used, 0u);
}

TEST(ConfessionTest, HealthyCoreNeverConfesses) {
  SimCore core(1, Rng(1));
  ConfessionOptions options;
  options.stress.iterations_per_unit = 64;
  options.max_attempts = 2;
  ConfessionTester tester(options);
  Rng rng(3);
  const Confession confession = tester.Interrogate(core, rng);
  EXPECT_FALSE(confession.confessed);
  EXPECT_EQ(confession.attempts, 2);
}

TEST(ConfessionTest, LimitedReproducibility) {
  // A defect with a narrow data trigger and a tiny budget often evades interrogation — the
  // paper's "limited reproducibility" half.
  SimCore core(1, Rng(4));
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip, 1.0);
  spec.trigger.mask = 0xffff;  // 1 in 65536 operand patterns
  spec.trigger.value = 0x1234;
  core.AddDefect(spec);
  ConfessionOptions options;
  options.stress.iterations_per_unit = 16;
  options.max_attempts = 1;
  ConfessionTester tester(options);
  Rng rng(5);
  const Confession confession = tester.Interrogate(core, rng);
  EXPECT_FALSE(confession.confessed) << "narrow triggers evade small interrogation budgets";
}

// --- Screening ------------------------------------------------------------------------------

TEST(ScreeningTest, CoverageGrowsOnSchedule) {
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu};
  options.coverage_schedule = {{SimTime::Days(100), ExecUnit::kCopy},
                               {SimTime::Days(200), ExecUnit::kAes}};
  ScreeningOrchestrator orchestrator(options, 16, Rng(1));
  EXPECT_EQ(orchestrator.CoveredUnits(SimTime::Days(0)).size(), 1u);
  EXPECT_EQ(orchestrator.CoveredUnits(SimTime::Days(150)).size(), 2u);
  EXPECT_EQ(orchestrator.CoveredUnits(SimTime::Days(365)).size(), 3u);
}

TEST(ScreeningTest, OfflineScreeningFindsCoveredDefect) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 4;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  // Plant a deterministic copy defect by hand on core 5.
  fleet.core(5).AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kStuckSet, 0.5));

  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kCopy};
  options.coverage_schedule.clear();
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(2));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  std::vector<Signal> emitted;
  // Two ticks: staggering spreads first screens over one period.
  orchestrator.Tick(SimTime::Days(1), SimTime::Days(1), fleet, scheduler,
                    [&](const Signal& s) { emitted.push_back(s); });
  orchestrator.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler,
                    [&](const Signal& s) { emitted.push_back(s); });
  ASSERT_FALSE(emitted.empty());
  EXPECT_EQ(emitted[0].core_global, 5u);
  EXPECT_EQ(static_cast<int>(emitted[0].type), static_cast<int>(SignalType::kScreenFail));
  // NOTE: the defect fleet.IsMercurial does not know about hand-planted defects; that is fine
  // for the screening path, which consults core.healthy() only.
}

TEST(ScreeningTest, UncoveredDefectIsAZeroDay) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  fleet.core(3).AddDefect(AlwaysFire(ExecUnit::kAes, DefectEffect::kRandomWrong, 1.0));

  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kCopy};
  options.coverage_schedule.clear();
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(3));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  int failures = 0;
  for (int day = 1; day <= 3; ++day) {
    const auto stats = orchestrator.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler,
                                         [&](const Signal&) { ++failures; });
    (void)stats;
  }
  EXPECT_EQ(failures, 0) << "no AES test in the corpus yet -> defect invisible to screening";
}

TEST(ScreeningTest, ScreeningChargesOpsForHealthyCores) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ScreeningOptions options;
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(4));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  const auto stats = orchestrator.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler,
                                       [](const Signal&) {});
  EXPECT_GT(stats.offline_screens, 0u);
  EXPECT_GT(stats.ops_spent, 0u) << "screening is not free even when nothing fails";
  EXPECT_EQ(stats.screen_failures, 0u);
}

TEST(ScreeningTest, QuarantinedCoresAreSkipped) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 1;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ScreeningOptions options;
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(5));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  for (uint64_t c = 0; c < fleet.core_count(); ++c) {
    scheduler.Quarantine(c);
  }
  const auto stats = orchestrator.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler,
                                       [](const Signal&) {});
  EXPECT_EQ(stats.offline_screens, 0u);
}

// --- Screening option validation --------------------------------------------------------------

TEST(ScreeningValidationTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateScreeningOptions(ScreeningOptions{}).ok());
}

TEST(ScreeningValidationTest, RejectsNegativeOnlineFraction) {
  ScreeningOptions options;
  options.online_fraction_per_day = -0.01;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsOnlineFractionAboveOne) {
  ScreeningOptions options;
  options.online_fraction_per_day = 1.01;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsNanOnlineFraction) {
  ScreeningOptions options;
  options.online_fraction_per_day = std::nan("");
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsNonPositiveOfflinePeriod) {
  ScreeningOptions options;
  options.offline_enabled = true;
  options.offline_period = SimTime::Seconds(0);
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
  options.offline_period = SimTime::Seconds(-5);
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsZeroOfflineIterations) {
  ScreeningOptions options;
  options.offline_enabled = true;
  options.offline_iterations = 0;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsZeroOnlineIterations) {
  ScreeningOptions options;
  options.online_enabled = true;
  options.online_iterations = 0;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, DisabledStagesSkipTheirChecks) {
  ScreeningOptions options;
  options.offline_enabled = false;
  options.offline_period = SimTime::Seconds(0);  // irrelevant while offline screening is off
  options.offline_iterations = 0;
  options.online_enabled = false;
  options.online_iterations = 0;
  EXPECT_TRUE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsUnsortedCoverageSchedule) {
  // An out-of-order entry used to be accepted silently; schedule-order consumers (the
  // adaptive coverage-gap scorer, operators reading the config) then see a unit that "never
  // comes online". The validator must reject, not sort in place.
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu};
  options.coverage_schedule = {{SimTime::Days(300), ExecUnit::kVector},
                               {SimTime::Days(150), ExecUnit::kCopy}};
  const Status status = ValidateScreeningOptions(options);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("sorted"), std::string::npos) << status.ToString();
}

TEST(ScreeningValidationTest, AcceptsTiedActivationTimes) {
  // Two units coming online the same day is fine — only strict inversions are rejected.
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu};
  options.coverage_schedule = {{SimTime::Days(150), ExecUnit::kCopy},
                               {SimTime::Days(150), ExecUnit::kVector}};
  EXPECT_TRUE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsDuplicateUnitWithinSchedule) {
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu};
  options.coverage_schedule = {{SimTime::Days(150), ExecUnit::kCopy},
                               {SimTime::Days(300), ExecUnit::kCopy}};
  const Status status = ValidateScreeningOptions(options);
  EXPECT_FALSE(status.ok()) << "a unit covered twice double-charges every battery";
  EXPECT_NE(status.ToString().find("copy"), std::string::npos) << status.ToString();
}

TEST(ScreeningValidationTest, RejectsScheduleUnitAlreadyInInitialCoverage) {
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kCopy};
  options.coverage_schedule = {{SimTime::Days(150), ExecUnit::kCopy}};
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsDuplicateUnitWithinInitialCoverage) {
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kIntAlu};
  options.coverage_schedule.clear();
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, AdaptiveRequiresOfflineScreening) {
  ScreeningOptions options;
  options.adaptive = true;
  options.offline_enabled = false;
  options.offline_period = SimTime::Days(45);
  options.offline_iterations = 2048;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, AdaptiveRejectsBadCadenceBounds) {
  ScreeningOptions options;
  options.adaptive = true;
  options.adaptive_min_period = SimTime::Seconds(0);
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
  options.adaptive_min_period = SimTime::Days(30);
  options.adaptive_max_period = SimTime::Days(10);
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, AdaptiveRejectsBadTierThresholds) {
  ScreeningOptions options;
  options.adaptive = true;
  options.risk_warm = 3.0;
  options.risk_hot = 1.0;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
  options.risk_warm = std::nan("");
  options.risk_hot = 3.0;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok()) << "NaN thresholds must not validate";
}

TEST(ScreeningValidationTest, AdaptiveDefaultsAreValid) {
  ScreeningOptions options;
  options.adaptive = true;
  EXPECT_TRUE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningTest, ThrottleOfflineDefersScreensDueSoon) {
  ScreeningOptions options;
  options.offline_period = SimTime::Days(30);
  ScreeningOrchestrator orchestrator(options, 64, Rng(9));
  // First screens are staggered over [0, 30) days; deferring 10 days from day 1 must push a
  // nonzero batch (those due in (1, 11]) out past the window.
  const uint64_t deferred = orchestrator.ThrottleOffline(SimTime::Days(1), SimTime::Days(10));
  EXPECT_GT(deferred, 0u);
  EXPECT_EQ(orchestrator.ThrottleOffline(SimTime::Days(1), SimTime::Days(10)), 0u)
      << "second throttle in the same window finds nothing left to defer";
  EXPECT_EQ(orchestrator.ThrottleOffline(SimTime::Days(1), SimTime::Seconds(0)), 0u)
      << "zero defer is a no-op";
}

TEST(ScreeningTest, OnlineSamplingRatePreservedAtSubDayTicks) {
  // online_fraction_per_day -> per-tick conversion: the Poisson mean is cores * fraction *
  // dt.days(), which is exact at ANY tick length (expectation is additive across ticks), so a
  // 30-minute control tick must produce the same expected daily sample count as a 1-day tick.
  // Locked statistically: each realized total must sit within 4 sigma of the analytic
  // expectation (sum of per-tick Poissons is Poisson, sigma = sqrt(mean)).
  FleetOptions fleet_options;
  fleet_options.machine_count = 50;  // 2400 cores, all installed before t = 0
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  ScreeningOptions options;
  options.offline_enabled = false;
  options.online_enabled = true;
  options.online_fraction_per_day = 0.5;
  constexpr int kDays = 20;
  const double expected = static_cast<double>(fleet.core_count()) * 0.5 * kDays;
  const double tolerance = 4.0 * std::sqrt(expected);

  const auto run = [&](SimTime dt, uint64_t rng_seed) {
    ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(rng_seed));
    uint64_t sampled = 0;
    const int64_t ticks = SimTime::Days(kDays).seconds() / dt.seconds();
    for (int64_t t = 1; t <= ticks; ++t) {
      const auto stats = orchestrator.Tick(SimTime::Seconds(t * dt.seconds()), dt, fleet,
                                           scheduler, [](const Signal&) {});
      sampled += stats.online_screens;
    }
    return sampled;
  };

  const auto daily = static_cast<double>(run(SimTime::Days(1), /*rng_seed=*/11));
  const auto sub_day = static_cast<double>(run(SimTime::Seconds(1800), /*rng_seed=*/12));
  EXPECT_NEAR(daily, expected, tolerance) << "1-day ticks off the analytic rate";
  EXPECT_NEAR(sub_day, expected, tolerance) << "30-minute ticks off the analytic rate";
}

// --- Risk-adaptive allocation -----------------------------------------------------------------

TEST(ScreeningAdaptiveTest, RiskToPolicyMappings) {
  ScreeningOptions options;
  options.adaptive = true;
  ScreeningOrchestrator orchestrator(options, 16, Rng(1));
  // Cadence: max_period / (1 + risk), clamped to [min, max].
  EXPECT_EQ(orchestrator.PeriodForRisk(0.0).seconds(), options.adaptive_max_period.seconds());
  EXPECT_EQ(orchestrator.PeriodForRisk(-5.0).seconds(), options.adaptive_max_period.seconds())
      << "negative risk clamps at the ceiling";
  EXPECT_EQ(orchestrator.PeriodForRisk(1.0).seconds(),
            options.adaptive_max_period.seconds() / 2);
  EXPECT_EQ(orchestrator.PeriodForRisk(1e9).seconds(), options.adaptive_min_period.seconds())
      << "extreme risk clamps at the floor";
  // Tiers: cold below warm, warm below hot, hot at and above.
  EXPECT_EQ(orchestrator.TierForRisk(0.0), 0);
  EXPECT_EQ(orchestrator.TierForRisk(options.risk_warm - 1e-9), 0);
  EXPECT_EQ(orchestrator.TierForRisk(options.risk_warm), 1);
  EXPECT_EQ(orchestrator.TierForRisk(options.risk_hot), 2);
  // Battery depth: 1x / 2x / 4x the configured iteration count.
  EXPECT_EQ(orchestrator.IterationsForTier(0), options.offline_iterations);
  EXPECT_EQ(orchestrator.IterationsForTier(1), 2 * options.offline_iterations);
  EXPECT_EQ(orchestrator.IterationsForTier(2), 4 * options.offline_iterations);
}

// Shared setup: a 2-machine fleet with every core due at the first tick (period = 1 day, the
// stagger spreads first screens over [0, 1d)), a corpus of the 6 default initial units, and
// online screening off so offline admission is the only signal.
ScreeningOptions AdaptiveDueNowOptions() {
  ScreeningOptions options;
  options.adaptive = true;
  options.offline_period = SimTime::Days(1);
  options.offline_iterations = 64;
  options.coverage_schedule.clear();
  options.online_enabled = false;
  return options;
}

TEST(ScreeningAdaptiveTest, BudgetDefersDueCoresDeterministically) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ScreeningOptions options = AdaptiveDueNowOptions();
  // Never-screened cores score warm (coverage gap alone: 6 units * 0.25 = 1.5 >= risk_warm),
  // so one warm battery — 2 * 64 iterations * 6 units — admits exactly one core.
  options.budget_ops_per_day = 2 * 64 * 6;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(2));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  orchestrator.PlanAdaptiveTick(SimTime::Days(1), SimTime::Days(1), fleet, scheduler);
  const ScreeningRiskStats& stats = orchestrator.risk_stats();
  EXPECT_EQ(stats.rescores, fleet.core_count());
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.deferred, fleet.core_count() - 1);
  EXPECT_EQ(stats.budget_exhausted_ticks, 1u);
  EXPECT_EQ(stats.tier_screens[1], 1u) << "never-screened cores sit in the warm tier";
  EXPECT_EQ(stats.ops_planned, options.budget_ops_per_day);

  const auto tick_stats = orchestrator.Tick(SimTime::Days(1), SimTime::Days(1), fleet,
                                            scheduler, [](const Signal&) {});
  EXPECT_EQ(tick_stats.offline_screens, 1u) << "execution consumes exactly the planned list";
  EXPECT_EQ(tick_stats.ops_spent, options.budget_ops_per_day);
}

TEST(ScreeningAdaptiveTest, EvidenceWinsThePriorityQueueUnderBudget) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  // Core 7 carries a defect in a covered unit AND heavy report-service evidence; with budget
  // for a single screen, the allocator must pick it over 95 equally-due peers.
  fleet.core(7).AddDefect(AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip, 1.0));
  ScreeningOptions options = AdaptiveDueNowOptions();
  options.budget_ops_per_day = 4 * 64 * 6;  // one hot battery
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(3));
  orchestrator.set_risk_probe([](uint64_t core, SimTime) {
    ScreeningRiskEvidence evidence;
    if (core == 7) {
      evidence.report_score = 40.0;  // 0.5 * 40 = +20 risk: hot tier, top priority
    }
    return evidence;
  });
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  orchestrator.PlanAdaptiveTick(SimTime::Days(1), SimTime::Days(1), fleet, scheduler);
  EXPECT_EQ(orchestrator.risk_stats().admitted, 1u);
  EXPECT_EQ(orchestrator.risk_stats().tier_screens[2], 1u);

  std::vector<Signal> emitted;
  const auto tick_stats = orchestrator.Tick(SimTime::Days(1), SimTime::Days(1), fleet,
                                            scheduler,
                                            [&](const Signal& s) { emitted.push_back(s); });
  EXPECT_EQ(tick_stats.offline_screens, 1u);
  ASSERT_EQ(emitted.size(), 1u) << "the admitted screen must be the defective, accused core";
  EXPECT_EQ(emitted[0].core_global, 7u);
  EXPECT_EQ(static_cast<int>(emitted[0].type), static_cast<int>(SignalType::kScreenFail));
}

// --- Quarantine manager -----------------------------------------------------------------------

struct QuarantineHarness {
  explicit QuarantineHarness(double rate_multiplier = 0.0)
      : fleet(Fleet::Build([&] {
          FleetOptions fleet_options;
          fleet_options.machine_count = 4;
          fleet_options.mercurial_rate_multiplier = rate_multiplier;
          return fleet_options;
        }())),
        scheduler(fleet.core_count(), SchedulerCosts{}),
        service(ReportServiceOptions{}, [this](uint64_t m) {
          return static_cast<uint32_t>(fleet.machine(m).core_count());
        }) {}

  Fleet fleet;
  CoreScheduler scheduler;
  CeeReportService service;
};

TEST(QuarantineTest, DefectiveSuspectIsRetired) {
  QuarantineHarness h;
  h.fleet.core(9).AddDefect(AlwaysFire(ExecUnit::kVector, DefectEffect::kBitFlip, 0.3));

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 128;
  QuarantineManager manager(policy, Rng(1));
  const std::vector<SuspectCore> suspects{{9, h.fleet.core_id(9).machine, 6.0, 1e-6}};
  const auto verdicts = manager.Process(SimTime::Days(3), suspects, h.fleet, h.scheduler,
                                        h.service);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].confessed);
  EXPECT_TRUE(verdicts[0].retired);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(9)), static_cast<int>(CoreState::kRetired));
  EXPECT_EQ(manager.stats().confessions, 1u);
  EXPECT_FALSE(manager.failed_units().at(9).empty());
  EXPECT_EQ(manager.retirement_times().at(9), SimTime::Days(3));
}

TEST(QuarantineTest, HealthySuspectIsReleased) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  QuarantineManager manager(policy, Rng(2));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  const auto verdicts = manager.Process(SimTime::Days(3), suspects, h.fleet, h.scheduler,
                                        h.service);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].retired);
  EXPECT_TRUE(h.scheduler.Schedulable(4));
  EXPECT_EQ(manager.stats().releases, 1u);
  EXPECT_EQ(manager.stats().false_positive_retirements, 0u);
}

TEST(QuarantineTest, RecidivismRetiresEvasiveCore) {
  QuarantineHarness h;
  // Evasive defect: narrow data trigger, tiny interrogation budget -> never confesses.
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip, 1.0);
  spec.trigger.mask = 0xffffff;
  spec.trigger.value = 0x123456;
  h.fleet.core(2).AddDefect(spec);

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 8;
  policy.confession.max_attempts = 1;
  policy.recidivism_retire_after = 3;
  QuarantineManager manager(policy, Rng(3));

  const std::vector<SuspectCore> suspects{{2, h.fleet.core_id(2).machine, 6.0, 1e-6}};
  manager.Process(SimTime::Days(1), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_TRUE(h.scheduler.Schedulable(2)) << "first accusation: released";
  manager.Process(SimTime::Days(2), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_TRUE(h.scheduler.Schedulable(2)) << "second accusation: released";
  manager.Process(SimTime::Days(3), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(2)), static_cast<int>(CoreState::kRetired))
      << "third accusation: recidivism retirement";
  EXPECT_EQ(manager.stats().recidivism_retirements, 1u);
}

TEST(QuarantineTest, NoConfessionRequiredRetiresOnSuspicion) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.require_confession = false;
  QuarantineManager manager(policy, Rng(4));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  manager.Process(SimTime::Days(1), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(4)), static_cast<int>(CoreState::kRetired));
  EXPECT_EQ(manager.stats().false_positive_retirements, 1u)
      << "aggressive policy strands healthy capacity";
}

TEST(QuarantineTest, AlreadyRetiredSuspectsAreSkipped) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.require_confession = false;
  QuarantineManager manager(policy, Rng(5));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  manager.Process(SimTime::Days(1), suspects, h.fleet, h.scheduler, h.service);
  const auto verdicts =
      manager.Process(SimTime::Days(2), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(manager.stats().retirements, 1u);
}

TEST(QuarantineTest, ReaccusedCoreIsNotDoubleCountedInSuspectsProcessed) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;  // keep releasing so the core can be re-accused
  QuarantineManager manager(policy, Rng(6));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  for (int day = 1; day <= 4; ++day) {
    manager.Process(SimTime::Days(day), suspects, h.fleet, h.scheduler, h.service);
  }
  EXPECT_EQ(manager.stats().suspects_processed, 1u)
      << "one distinct core, regardless of how many times it was re-accused";
  EXPECT_EQ(manager.stats().accusations, 4u) << "every accusation event is still counted";
  EXPECT_EQ(manager.stats().releases, 4u);
}

TEST(QuarantineTest, RecidivismBoundaryReleasesUntilThreshold) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 4;
  QuarantineManager manager(policy, Rng(7));
  // A healthy core never confesses, so every verdict is recidivism-driven.
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  for (int accusation = 1; accusation <= 3; ++accusation) {
    manager.Process(SimTime::Days(accusation), suspects, h.fleet, h.scheduler, h.service);
    EXPECT_TRUE(h.scheduler.Schedulable(4))
        << "accusation " << accusation << " of retire_after - 1 must release";
  }
  EXPECT_EQ(manager.stats().recidivism_retirements, 0u);
  manager.Process(SimTime::Days(4), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(4)), static_cast<int>(CoreState::kRetired))
      << "accusation number retire_after retires";
  EXPECT_EQ(manager.stats().recidivism_retirements, 1u);
}

TEST(QuarantineTest, RecidivismZeroNeverRetiresByReaccusation) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;
  QuarantineManager manager(policy, Rng(8));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  for (int day = 1; day <= 8; ++day) {
    manager.Process(SimTime::Days(day), suspects, h.fleet, h.scheduler, h.service);
    ASSERT_TRUE(h.scheduler.Schedulable(4)) << "day " << day;
  }
  EXPECT_EQ(manager.stats().recidivism_retirements, 0u);
  EXPECT_EQ(manager.stats().retirements, 0u);
}

TEST(SignalTest, TypeNames) {
  for (int t = 0; t < kSignalTypeCount; ++t) {
    EXPECT_STRNE(SignalTypeName(static_cast<SignalType>(t)), "unknown");
  }
}

TEST(SignalTest, EveryTypeCarriesAPositiveDefaultWeight) {
  // Companion to the static_assert in report_service.h: the compile-time guard pins the
  // count; this pins the values — a new SignalType that slid in with a zero (value-initialized)
  // weight would silently erase every report of that type from the evidence ledger.
  const ReportServiceOptions options;
  for (int t = 0; t < kSignalTypeCount; ++t) {
    EXPECT_GT(options.type_weight[t], 0.0)
        << "type_weight[" << SignalTypeName(static_cast<SignalType>(t)) << "] must be set";
  }
}

}  // namespace
}  // namespace mercurial
