// Tests for src/detect: report service, confession testing, screening, quarantine policy.

#include <cmath>

#include <gtest/gtest.h>

#include "src/detect/confession.h"
#include "src/detect/quarantine.h"
#include "src/detect/report_service.h"
#include "src/detect/screening.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {
namespace {

constexpr uint32_t kCoresPerMachine = 48;

CeeReportService MakeService(ReportServiceOptions options = {}) {
  return CeeReportService(options, [](uint64_t) { return kCoresPerMachine; });
}

Signal At(SimTime t, uint64_t machine, uint64_t core,
          SignalType type = SignalType::kAppReport) {
  return Signal{t, machine, core, type};
}

DefectSpec AlwaysFire(ExecUnit unit, DefectEffect effect, double rate = 1.0) {
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = effect;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

// --- Report service ---------------------------------------------------------------------------

TEST(ReportServiceTest, ConcentratedReportsBecomeSuspects) {
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  for (int i = 0; i < 5; ++i) {
    service.Report(At(t, /*machine=*/3, /*core=*/77));
  }
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].core_global, 77u);
  EXPECT_EQ(suspects[0].machine, 3u);
  EXPECT_LT(suspects[0].p_value, 1e-3);
  EXPECT_GE(suspects[0].score, 5.0);
}

TEST(ReportServiceTest, EvenlySpreadReportsAreNotSuspects) {
  // "Reports that are evenly spread across cores probably are not CEEs."
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  for (uint64_t core = 0; core < kCoresPerMachine; ++core) {
    service.Report(At(t, 3, core));
    service.Report(At(t, 3, core));
    service.Report(At(t, 3, core));
  }
  EXPECT_TRUE(service.Suspects(t).empty());
}

TEST(ReportServiceTest, MixedSpreadStillFlagsTheHotCore) {
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  // Background: one report on each of 20 cores; hot core gets 6.
  for (uint64_t core = 0; core < 20; ++core) {
    service.Report(At(t, 5, core));
  }
  for (int i = 0; i < 6; ++i) {
    service.Report(At(t, 5, 7));
  }
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].core_global, 7u);
}

TEST(ReportServiceTest, ScoresDecayOverTime) {
  ReportServiceOptions options;
  options.half_life_days = 7.0;
  CeeReportService service = MakeService(options);
  for (int i = 0; i < 5; ++i) {
    service.Report(At(SimTime::Days(0), 1, 10));
  }
  // After 10 half-lives the mass is gone (also pruned).
  EXPECT_TRUE(service.Suspects(SimTime::Days(70)).empty());
  EXPECT_EQ(service.tracked_cores(), 0u) << "decayed records must be pruned";
}

TEST(ReportServiceTest, FreshReportsSurviveDecay) {
  CeeReportService service = MakeService();
  for (int day = 0; day < 5; ++day) {
    service.Report(At(SimTime::Days(day), 1, 10, SignalType::kMachineCheck));
  }
  const auto suspects = service.Suspects(SimTime::Days(5));
  ASSERT_EQ(suspects.size(), 1u) << "recidivism within the half-life accumulates";
}

TEST(ReportServiceTest, SignalWeightsMatter) {
  // Screen failures (weight 4) reach the suspicion floor faster than crashes (weight 1).
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  service.Report(At(t, 1, 10, SignalType::kScreenFail));
  const auto suspects = service.Suspects(t);
  ASSERT_EQ(suspects.size(), 1u) << "one screen failure alone is grounds for suspicion";
  CeeReportService service2 = MakeService();
  service2.Report(At(t, 1, 11, SignalType::kCrash));
  EXPECT_TRUE(service2.Suspects(t).empty()) << "one crash alone is not";
}

TEST(ReportServiceTest, ForgetClearsCore) {
  CeeReportService service = MakeService();
  const SimTime t = SimTime::Days(1);
  for (int i = 0; i < 5; ++i) {
    service.Report(At(t, 1, 10));
  }
  service.Forget(10);
  EXPECT_TRUE(service.Suspects(t).empty());
}

TEST(ReportServiceTest, TotalReportsCounted) {
  CeeReportService service = MakeService();
  for (int i = 0; i < 7; ++i) {
    service.Report(At(SimTime::Days(1), 1, static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(service.total_reports(), 7u);
}

// --- Confession -----------------------------------------------------------------------------

TEST(ConfessionTest, MercurialCoreConfesses) {
  SimCore core(1, Rng(1));
  core.AddDefect(AlwaysFire(ExecUnit::kVector, DefectEffect::kBitFlip, 0.3));
  ConfessionOptions options;
  options.stress.iterations_per_unit = 128;
  ConfessionTester tester(options);
  Rng rng(2);
  const Confession confession = tester.Interrogate(core, rng);
  EXPECT_TRUE(confession.confessed);
  ASSERT_FALSE(confession.failed_units.empty());
  EXPECT_EQ(static_cast<int>(confession.failed_units[0]), static_cast<int>(ExecUnit::kVector));
  EXPECT_EQ(confession.attempts, 1);
  EXPECT_GT(confession.ops_used, 0u);
}

TEST(ConfessionTest, HealthyCoreNeverConfesses) {
  SimCore core(1, Rng(1));
  ConfessionOptions options;
  options.stress.iterations_per_unit = 64;
  options.max_attempts = 2;
  ConfessionTester tester(options);
  Rng rng(3);
  const Confession confession = tester.Interrogate(core, rng);
  EXPECT_FALSE(confession.confessed);
  EXPECT_EQ(confession.attempts, 2);
}

TEST(ConfessionTest, LimitedReproducibility) {
  // A defect with a narrow data trigger and a tiny budget often evades interrogation — the
  // paper's "limited reproducibility" half.
  SimCore core(1, Rng(4));
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip, 1.0);
  spec.trigger.mask = 0xffff;  // 1 in 65536 operand patterns
  spec.trigger.value = 0x1234;
  core.AddDefect(spec);
  ConfessionOptions options;
  options.stress.iterations_per_unit = 16;
  options.max_attempts = 1;
  ConfessionTester tester(options);
  Rng rng(5);
  const Confession confession = tester.Interrogate(core, rng);
  EXPECT_FALSE(confession.confessed) << "narrow triggers evade small interrogation budgets";
}

// --- Screening ------------------------------------------------------------------------------

TEST(ScreeningTest, CoverageGrowsOnSchedule) {
  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu};
  options.coverage_schedule = {{SimTime::Days(100), ExecUnit::kCopy},
                               {SimTime::Days(200), ExecUnit::kAes}};
  ScreeningOrchestrator orchestrator(options, 16, Rng(1));
  EXPECT_EQ(orchestrator.CoveredUnits(SimTime::Days(0)).size(), 1u);
  EXPECT_EQ(orchestrator.CoveredUnits(SimTime::Days(150)).size(), 2u);
  EXPECT_EQ(orchestrator.CoveredUnits(SimTime::Days(365)).size(), 3u);
}

TEST(ScreeningTest, OfflineScreeningFindsCoveredDefect) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 4;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  // Plant a deterministic copy defect by hand on core 5.
  fleet.core(5).AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kStuckSet, 0.5));

  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kCopy};
  options.coverage_schedule.clear();
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(2));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  std::vector<Signal> emitted;
  // Two ticks: staggering spreads first screens over one period.
  orchestrator.Tick(SimTime::Days(1), SimTime::Days(1), fleet, scheduler,
                    [&](const Signal& s) { emitted.push_back(s); });
  orchestrator.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler,
                    [&](const Signal& s) { emitted.push_back(s); });
  ASSERT_FALSE(emitted.empty());
  EXPECT_EQ(emitted[0].core_global, 5u);
  EXPECT_EQ(static_cast<int>(emitted[0].type), static_cast<int>(SignalType::kScreenFail));
  // NOTE: the defect fleet.IsMercurial does not know about hand-planted defects; that is fine
  // for the screening path, which consults core.healthy() only.
}

TEST(ScreeningTest, UncoveredDefectIsAZeroDay) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  fleet.core(3).AddDefect(AlwaysFire(ExecUnit::kAes, DefectEffect::kRandomWrong, 1.0));

  ScreeningOptions options;
  options.initial_coverage = {ExecUnit::kIntAlu, ExecUnit::kCopy};
  options.coverage_schedule.clear();
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(3));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});

  int failures = 0;
  for (int day = 1; day <= 3; ++day) {
    const auto stats = orchestrator.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler,
                                         [&](const Signal&) { ++failures; });
    (void)stats;
  }
  EXPECT_EQ(failures, 0) << "no AES test in the corpus yet -> defect invisible to screening";
}

TEST(ScreeningTest, ScreeningChargesOpsForHealthyCores) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ScreeningOptions options;
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(4));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  const auto stats = orchestrator.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler,
                                       [](const Signal&) {});
  EXPECT_GT(stats.offline_screens, 0u);
  EXPECT_GT(stats.ops_spent, 0u) << "screening is not free even when nothing fails";
  EXPECT_EQ(stats.screen_failures, 0u);
}

TEST(ScreeningTest, QuarantinedCoresAreSkipped) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 1;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ScreeningOptions options;
  options.offline_period = SimTime::Days(1);
  options.online_enabled = false;
  ScreeningOrchestrator orchestrator(options, fleet.core_count(), Rng(5));
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  for (uint64_t c = 0; c < fleet.core_count(); ++c) {
    scheduler.Quarantine(c);
  }
  const auto stats = orchestrator.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler,
                                       [](const Signal&) {});
  EXPECT_EQ(stats.offline_screens, 0u);
}

// --- Screening option validation --------------------------------------------------------------

TEST(ScreeningValidationTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateScreeningOptions(ScreeningOptions{}).ok());
}

TEST(ScreeningValidationTest, RejectsNegativeOnlineFraction) {
  ScreeningOptions options;
  options.online_fraction_per_day = -0.01;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsOnlineFractionAboveOne) {
  ScreeningOptions options;
  options.online_fraction_per_day = 1.01;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsNanOnlineFraction) {
  ScreeningOptions options;
  options.online_fraction_per_day = std::nan("");
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsNonPositiveOfflinePeriod) {
  ScreeningOptions options;
  options.offline_enabled = true;
  options.offline_period = SimTime::Seconds(0);
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
  options.offline_period = SimTime::Seconds(-5);
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsZeroOfflineIterations) {
  ScreeningOptions options;
  options.offline_enabled = true;
  options.offline_iterations = 0;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, RejectsZeroOnlineIterations) {
  ScreeningOptions options;
  options.online_enabled = true;
  options.online_iterations = 0;
  EXPECT_FALSE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningValidationTest, DisabledStagesSkipTheirChecks) {
  ScreeningOptions options;
  options.offline_enabled = false;
  options.offline_period = SimTime::Seconds(0);  // irrelevant while offline screening is off
  options.offline_iterations = 0;
  options.online_enabled = false;
  options.online_iterations = 0;
  EXPECT_TRUE(ValidateScreeningOptions(options).ok());
}

TEST(ScreeningTest, ThrottleOfflineDefersScreensDueSoon) {
  ScreeningOptions options;
  options.offline_period = SimTime::Days(30);
  ScreeningOrchestrator orchestrator(options, 64, Rng(9));
  // First screens are staggered over [0, 30) days; deferring 10 days from day 1 must push a
  // nonzero batch (those due in (1, 11]) out past the window.
  const uint64_t deferred = orchestrator.ThrottleOffline(SimTime::Days(1), SimTime::Days(10));
  EXPECT_GT(deferred, 0u);
  EXPECT_EQ(orchestrator.ThrottleOffline(SimTime::Days(1), SimTime::Days(10)), 0u)
      << "second throttle in the same window finds nothing left to defer";
  EXPECT_EQ(orchestrator.ThrottleOffline(SimTime::Days(1), SimTime::Seconds(0)), 0u)
      << "zero defer is a no-op";
}

// --- Quarantine manager -----------------------------------------------------------------------

struct QuarantineHarness {
  explicit QuarantineHarness(double rate_multiplier = 0.0)
      : fleet(Fleet::Build([&] {
          FleetOptions fleet_options;
          fleet_options.machine_count = 4;
          fleet_options.mercurial_rate_multiplier = rate_multiplier;
          return fleet_options;
        }())),
        scheduler(fleet.core_count(), SchedulerCosts{}),
        service(ReportServiceOptions{}, [this](uint64_t m) {
          return static_cast<uint32_t>(fleet.machine(m).core_count());
        }) {}

  Fleet fleet;
  CoreScheduler scheduler;
  CeeReportService service;
};

TEST(QuarantineTest, DefectiveSuspectIsRetired) {
  QuarantineHarness h;
  h.fleet.core(9).AddDefect(AlwaysFire(ExecUnit::kVector, DefectEffect::kBitFlip, 0.3));

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 128;
  QuarantineManager manager(policy, Rng(1));
  const std::vector<SuspectCore> suspects{{9, h.fleet.core_id(9).machine, 6.0, 1e-6}};
  const auto verdicts = manager.Process(SimTime::Days(3), suspects, h.fleet, h.scheduler,
                                        h.service);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].confessed);
  EXPECT_TRUE(verdicts[0].retired);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(9)), static_cast<int>(CoreState::kRetired));
  EXPECT_EQ(manager.stats().confessions, 1u);
  EXPECT_FALSE(manager.failed_units().at(9).empty());
  EXPECT_EQ(manager.retirement_times().at(9), SimTime::Days(3));
}

TEST(QuarantineTest, HealthySuspectIsReleased) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  QuarantineManager manager(policy, Rng(2));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  const auto verdicts = manager.Process(SimTime::Days(3), suspects, h.fleet, h.scheduler,
                                        h.service);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].retired);
  EXPECT_TRUE(h.scheduler.Schedulable(4));
  EXPECT_EQ(manager.stats().releases, 1u);
  EXPECT_EQ(manager.stats().false_positive_retirements, 0u);
}

TEST(QuarantineTest, RecidivismRetiresEvasiveCore) {
  QuarantineHarness h;
  // Evasive defect: narrow data trigger, tiny interrogation budget -> never confesses.
  DefectSpec spec = AlwaysFire(ExecUnit::kIntAlu, DefectEffect::kBitFlip, 1.0);
  spec.trigger.mask = 0xffffff;
  spec.trigger.value = 0x123456;
  h.fleet.core(2).AddDefect(spec);

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 8;
  policy.confession.max_attempts = 1;
  policy.recidivism_retire_after = 3;
  QuarantineManager manager(policy, Rng(3));

  const std::vector<SuspectCore> suspects{{2, h.fleet.core_id(2).machine, 6.0, 1e-6}};
  manager.Process(SimTime::Days(1), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_TRUE(h.scheduler.Schedulable(2)) << "first accusation: released";
  manager.Process(SimTime::Days(2), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_TRUE(h.scheduler.Schedulable(2)) << "second accusation: released";
  manager.Process(SimTime::Days(3), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(2)), static_cast<int>(CoreState::kRetired))
      << "third accusation: recidivism retirement";
  EXPECT_EQ(manager.stats().recidivism_retirements, 1u);
}

TEST(QuarantineTest, NoConfessionRequiredRetiresOnSuspicion) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.require_confession = false;
  QuarantineManager manager(policy, Rng(4));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  manager.Process(SimTime::Days(1), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(4)), static_cast<int>(CoreState::kRetired));
  EXPECT_EQ(manager.stats().false_positive_retirements, 1u)
      << "aggressive policy strands healthy capacity";
}

TEST(QuarantineTest, AlreadyRetiredSuspectsAreSkipped) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.require_confession = false;
  QuarantineManager manager(policy, Rng(5));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  manager.Process(SimTime::Days(1), suspects, h.fleet, h.scheduler, h.service);
  const auto verdicts =
      manager.Process(SimTime::Days(2), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(manager.stats().retirements, 1u);
}

TEST(QuarantineTest, ReaccusedCoreIsNotDoubleCountedInSuspectsProcessed) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;  // keep releasing so the core can be re-accused
  QuarantineManager manager(policy, Rng(6));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  for (int day = 1; day <= 4; ++day) {
    manager.Process(SimTime::Days(day), suspects, h.fleet, h.scheduler, h.service);
  }
  EXPECT_EQ(manager.stats().suspects_processed, 1u)
      << "one distinct core, regardless of how many times it was re-accused";
  EXPECT_EQ(manager.stats().accusations, 4u) << "every accusation event is still counted";
  EXPECT_EQ(manager.stats().releases, 4u);
}

TEST(QuarantineTest, RecidivismBoundaryReleasesUntilThreshold) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 4;
  QuarantineManager manager(policy, Rng(7));
  // A healthy core never confesses, so every verdict is recidivism-driven.
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  for (int accusation = 1; accusation <= 3; ++accusation) {
    manager.Process(SimTime::Days(accusation), suspects, h.fleet, h.scheduler, h.service);
    EXPECT_TRUE(h.scheduler.Schedulable(4))
        << "accusation " << accusation << " of retire_after - 1 must release";
  }
  EXPECT_EQ(manager.stats().recidivism_retirements, 0u);
  manager.Process(SimTime::Days(4), suspects, h.fleet, h.scheduler, h.service);
  EXPECT_EQ(static_cast<int>(h.scheduler.state(4)), static_cast<int>(CoreState::kRetired))
      << "accusation number retire_after retires";
  EXPECT_EQ(manager.stats().recidivism_retirements, 1u);
}

TEST(QuarantineTest, RecidivismZeroNeverRetiresByReaccusation) {
  QuarantineHarness h;
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;
  QuarantineManager manager(policy, Rng(8));
  const std::vector<SuspectCore> suspects{{4, h.fleet.core_id(4).machine, 6.0, 1e-6}};
  for (int day = 1; day <= 8; ++day) {
    manager.Process(SimTime::Days(day), suspects, h.fleet, h.scheduler, h.service);
    ASSERT_TRUE(h.scheduler.Schedulable(4)) << "day " << day;
  }
  EXPECT_EQ(manager.stats().recidivism_retirements, 0u);
  EXPECT_EQ(manager.stats().retirements, 0u);
}

TEST(SignalTest, TypeNames) {
  for (int t = 0; t < kSignalTypeCount; ++t) {
    EXPECT_STRNE(SignalTypeName(static_cast<SignalType>(t)), "unknown");
  }
}

}  // namespace
}  // namespace mercurial
