// Tests for the §9/§6.1/§4 extensions: selective replication, safe-task placement, the cost
// tradeoff model, and the MCA log analyzer.

#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/tradeoff.h"
#include "src/detect/mca_log.h"
#include "src/mitigate/selective.h"
#include "src/sched/placement.h"

namespace mercurial {
namespace {

DefectSpec AlwaysFire(ExecUnit unit, DefectEffect effect, double rate = 1.0) {
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = effect;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

struct CorePool {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit CorePool(int n, int defective = -1, double rate = 1.0) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(700 + i)));
      if (i == defective) {
        owned.back()->AddDefect(AlwaysFire(ExecUnit::kIntMul, DefectEffect::kRandomWrong, rate));
      }
      ptrs.push_back(owned.back().get());
    }
  }
};

Block MakeBlock(const char* label, Criticality criticality) {
  Block block;
  block.label = label;
  block.criticality = criticality;
  block.body = [](SimCore& core, uint64_t state) {
    uint64_t x = state;
    for (int i = 0; i < 16; ++i) {
      x = core.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 29));
    }
    return x;
  };
  return block;
}

uint64_t GoldenProgram(const std::vector<Block>& program, uint64_t state) {
  SimCore golden(999, Rng(999));
  for (const Block& block : program) {
    state = block.body(golden, state);
  }
  return state;
}

// --- SelectiveReplicator ---------------------------------------------------------------------

TEST(SelectiveTest, HealthyPoolAnyPolicyIsCorrect) {
  const std::vector<Block> program = {MakeBlock("a", Criticality::kOrdinary),
                                      MakeBlock("b", Criticality::kImportant),
                                      MakeBlock("c", Criticality::kCritical)};
  for (auto policy : {ReplicationPolicy::None(), ReplicationPolicy::Selective(),
                      ReplicationPolicy::FullTmr()}) {
    CorePool pool(3);
    SelectiveReplicator replicator(pool.ptrs, policy);
    const auto result = replicator.RunProgram(program, 5);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, GoldenProgram(program, 5));
  }
}

TEST(SelectiveTest, OverheadScalesWithPolicy) {
  const std::vector<Block> program = {MakeBlock("a", Criticality::kOrdinary),
                                      MakeBlock("b", Criticality::kOrdinary),
                                      MakeBlock("c", Criticality::kCritical)};
  CorePool none_pool(3);
  SelectiveReplicator none(none_pool.ptrs, ReplicationPolicy::None());
  ASSERT_TRUE(none.RunProgram(program, 1).ok());
  EXPECT_DOUBLE_EQ(none.stats().OverheadFactor(), 1.0);

  CorePool selective_pool(3);
  SelectiveReplicator selective(selective_pool.ptrs, ReplicationPolicy::Selective());
  ASSERT_TRUE(selective.RunProgram(program, 1).ok());
  // 2 simplex + 1 TMR = 5 executions over 3 blocks.
  EXPECT_DOUBLE_EQ(selective.stats().OverheadFactor(), 5.0 / 3.0);

  CorePool full_pool(3);
  SelectiveReplicator full(full_pool.ptrs, ReplicationPolicy::FullTmr());
  ASSERT_TRUE(full.RunProgram(program, 1).ok());
  EXPECT_DOUBLE_EQ(full.stats().OverheadFactor(), 3.0);
}

TEST(SelectiveTest, CriticalBlockSurvivesDefectiveCore) {
  // One defective core in a pool of four. Under the selective policy the critical block is
  // TMR-protected: even when a replica lands on the bad core it is outvoted.
  const std::vector<Block> program = {MakeBlock("critical", Criticality::kCritical)};
  int wrong = 0;
  for (int trial = 0; trial < 30; ++trial) {
    CorePool pool(4, /*defective=*/1, /*rate=*/1.0);
    SelectiveReplicator replicator(pool.ptrs, ReplicationPolicy::Selective());
    const auto result = replicator.RunProgram(program, 100 + trial);
    ASSERT_TRUE(result.ok());
    wrong += *result != GoldenProgram(program, 100 + trial) ? 1 : 0;
  }
  EXPECT_EQ(wrong, 0);
}

TEST(SelectiveTest, OrdinaryBlocksRemainExposedUnderSelectivePolicy) {
  // The point of the tradeoff: unprotected blocks on a defective core still corrupt.
  const std::vector<Block> program = {MakeBlock("ordinary", Criticality::kOrdinary)};
  int wrong = 0;
  for (int trial = 0; trial < 40; ++trial) {
    CorePool pool(1, /*defective=*/0, /*rate=*/1.0);
    SelectiveReplicator replicator(pool.ptrs, ReplicationPolicy::Selective());
    const auto result = replicator.RunProgram(program, trial);
    ASSERT_TRUE(result.ok());
    wrong += *result != GoldenProgram(program, trial) ? 1 : 0;
  }
  EXPECT_GT(wrong, 0);
}

TEST(SelectiveTest, DisagreementsAreCounted) {
  CorePool pool(4, /*defective=*/0, /*rate=*/1.0);
  SelectiveReplicator replicator(pool.ptrs, ReplicationPolicy::FullTmr());
  const std::vector<Block> program = {MakeBlock("x", Criticality::kOrdinary)};
  ASSERT_TRUE(replicator.RunProgram(program, 7).ok());
  EXPECT_GT(replicator.stats().detected_disagreements, 0u);
}

TEST(SelectiveTest, CriticalityNames) {
  EXPECT_STREQ(CriticalityName(Criticality::kOrdinary), "ordinary");
  EXPECT_STREQ(CriticalityName(Criticality::kImportant), "important");
  EXPECT_STREQ(CriticalityName(Criticality::kCritical), "critical");
}

// --- PlacementPlanner ---------------------------------------------------------------------------

TEST(PlacementTest, DisjointWorkloadsReclaimCapacity) {
  PlacementPlanner planner(PlacementPlanner::StandardProfiles());
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed;
  failed[7] = {ExecUnit::kAes};  // crypto-only defect
  const PlacementPlan plan = planner.Plan(failed);
  ASSERT_EQ(plan.decisions.size(), 1u);
  // Everything except the crypto workload is safe: 11/12 of the mix.
  EXPECT_NEAR(plan.decisions[0].reclaimable_fraction, 11.0 / 12.0, 1e-9);
  EXPECT_EQ(plan.decisions[0].safe_workloads.size(), 11u);
  EXPECT_EQ(plan.fully_stranded, 0u);
}

TEST(PlacementTest, BroadDefectStrandsCore) {
  PlacementPlanner planner(PlacementPlanner::StandardProfiles());
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed;
  // A load-path defect poisons almost everything that touches memory.
  failed[3] = {ExecUnit::kLoad, ExecUnit::kCopy, ExecUnit::kIntAlu,
               ExecUnit::kStore, ExecUnit::kFp, ExecUnit::kAes,
               ExecUnit::kCrc, ExecUnit::kAtomic, ExecUnit::kIntMul,
               ExecUnit::kIntDiv, ExecUnit::kVector};
  const PlacementPlan plan = planner.Plan(failed);
  ASSERT_EQ(plan.decisions.size(), 1u);
  EXPECT_TRUE(plan.decisions[0].safe_workloads.empty());
  EXPECT_EQ(plan.fully_stranded, 1u);
  EXPECT_DOUBLE_EQ(plan.mean_reclaimed, 0.0);
}

TEST(PlacementTest, MixedPopulation) {
  PlacementPlanner planner(PlacementPlanner::StandardProfiles());
  std::unordered_map<uint64_t, std::vector<ExecUnit>> failed;
  failed[1] = {ExecUnit::kAes};
  failed[2] = {ExecUnit::kFp};
  failed[3] = {ExecUnit::kLoad};  // strands hash/locking/sorting/gc/db/kernel
  const PlacementPlan plan = planner.Plan(failed);
  EXPECT_EQ(plan.decisions.size(), 3u);
  EXPECT_GT(plan.mean_reclaimed, 0.0);
  EXPECT_LT(plan.mean_reclaimed, 1.0);
}

TEST(PlacementTest, EmptyInput) {
  PlacementPlanner planner(PlacementPlanner::StandardProfiles());
  const PlacementPlan plan = planner.Plan({});
  EXPECT_TRUE(plan.decisions.empty());
  EXPECT_DOUBLE_EQ(plan.mean_reclaimed, 0.0);
}

// --- Tradeoff model ----------------------------------------------------------------------------

TEST(TradeoffTest, CostsAddUp) {
  StudyReport report;
  report.symptom_counts[static_cast<int>(Symptom::kSilentCorruption)] = 2;
  report.symptom_counts[static_cast<int>(Symptom::kDetectedLate)] = 3;
  report.symptom_counts[static_cast<int>(Symptom::kDetectedImmediately)] = 10;
  report.symptom_counts[static_cast<int>(Symptom::kCrash)] = 1;
  report.symptom_counts[static_cast<int>(Symptom::kMachineCheck)] = 4;
  report.screening_ops = 2'000'000'000;           // 2 Gop
  report.quarantine.interrogation_ops = 1'000'000'000;
  report.scheduler.stranded_core_seconds = 86400.0 * 5;  // 5 core-days
  report.scheduler.migration_cost_core_seconds = 3600.0 * 2;
  report.scheduler.lost_work_core_seconds = 3600.0;

  CostModel model;  // defaults
  const CostBreakdown bill = EvaluateStudyCost(report, model);
  EXPECT_DOUBLE_EQ(bill.corruption, 2 * 500.0 + 3 * 100.0);
  EXPECT_DOUBLE_EQ(bill.disruption, 10 * 2.0 + 1 * 10.0 + 4 * 5.0);
  EXPECT_DOUBLE_EQ(bill.screening, 3.0);
  EXPECT_DOUBLE_EQ(bill.capacity, 5.0 + 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(bill.total(),
                   bill.corruption + bill.disruption + bill.screening + bill.capacity);
}

TEST(TradeoffTest, AcceptableRateDominanceCriterion) {
  // §4: CEE probability dominated by the inherent software-bug rate.
  EXPECT_DOUBLE_EQ(AcceptableCeeRate(1e-5, 0.1), 1e-6);
  EXPECT_DOUBLE_EQ(AcceptableCeeRate(0.0, 0.1), 0.0);
}

TEST(TradeoffTest, MeasuredRate) {
  StudyReport report;
  EXPECT_DOUBLE_EQ(MeasuredCeeRate(report), 0.0);
  report.work_units_executed = 1000;
  report.symptom_counts[static_cast<int>(Symptom::kSilentCorruption)] = 5;
  report.symptom_counts[static_cast<int>(Symptom::kCrash)] = 5;
  EXPECT_DOUBLE_EQ(MeasuredCeeRate(report), 0.01);
}

// --- MCA log ------------------------------------------------------------------------------------

McaRecord Record(int64_t day, uint64_t core, ExecUnit bank, uint64_t syndrome) {
  McaRecord record;
  record.time = SimTime::Days(day);
  record.machine = core / 48;
  record.core_global = core;
  record.bank = bank;
  record.syndrome = syndrome;
  return record;
}

TEST(McaLogTest, RingBufferOverwritesOldest) {
  McaLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Append(Record(i, static_cast<uint64_t>(i), ExecUnit::kIntAlu, 0));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_appended(), 5u);
  EXPECT_EQ(log.overwritten(), 2u);
  const auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].core_global, 2u);  // oldest surviving
  EXPECT_EQ(snapshot[2].core_global, 4u);  // newest
}

TEST(McaLogTest, AnalyzerFindsRecidivistAndAttributesUnit) {
  McaLog log(64);
  // Core 7: five MCEs, four from the vector bank, same syndrome twice.
  log.Append(Record(1, 7, ExecUnit::kVector, 0xAA));
  log.Append(Record(2, 7, ExecUnit::kVector, 0xAB));
  log.Append(Record(3, 7, ExecUnit::kVector, 0xAA));
  log.Append(Record(4, 7, ExecUnit::kCopy, 0xAC));
  log.Append(Record(5, 7, ExecUnit::kVector, 0xAD));
  // Background: single MCEs on other cores (random transients).
  log.Append(Record(2, 100, ExecUnit::kIntAlu, 0x01));
  log.Append(Record(3, 200, ExecUnit::kFp, 0x02));

  const McaAnalysis analysis = AnalyzeMcaLog(log, /*recidivism_threshold=*/3);
  EXPECT_EQ(analysis.records_analyzed, 7u);
  EXPECT_EQ(analysis.distinct_cores, 3u);
  ASSERT_EQ(analysis.recidivists.size(), 1u);
  const McaCoreFinding& finding = analysis.recidivists[0];
  EXPECT_EQ(finding.core_global, 7u);
  EXPECT_EQ(finding.record_count, 5u);
  EXPECT_EQ(static_cast<int>(finding.dominant_bank), static_cast<int>(ExecUnit::kVector));
  EXPECT_DOUBLE_EQ(finding.bank_concentration, 0.8);
  EXPECT_TRUE(finding.repeated_syndrome);
  EXPECT_EQ(finding.first_seen, SimTime::Days(1));
  EXPECT_EQ(finding.last_seen, SimTime::Days(5));
}

TEST(McaLogTest, RankingByRecordCount) {
  McaLog log(64);
  for (int i = 0; i < 3; ++i) {
    log.Append(Record(i, 11, ExecUnit::kIntAlu, 1));
  }
  for (int i = 0; i < 6; ++i) {
    log.Append(Record(i, 22, ExecUnit::kCopy, 2));
  }
  const McaAnalysis analysis = AnalyzeMcaLog(log, 3);
  ASSERT_EQ(analysis.recidivists.size(), 2u);
  EXPECT_EQ(analysis.recidivists[0].core_global, 22u);
  EXPECT_EQ(analysis.recidivists[1].core_global, 11u);
}

TEST(McaLogTest, NoRepeatedSyndromeForDistinctTransients) {
  McaLog log(16);
  log.Append(Record(1, 5, ExecUnit::kFp, 0x10));
  log.Append(Record(2, 5, ExecUnit::kFp, 0x20));
  log.Append(Record(3, 5, ExecUnit::kFp, 0x30));
  const McaAnalysis analysis = AnalyzeMcaLog(log, 3);
  ASSERT_EQ(analysis.recidivists.size(), 1u);
  EXPECT_FALSE(analysis.recidivists[0].repeated_syndrome);
}

TEST(McaLogTest, RingOverwriteErasesEvidence) {
  // The telemetry deficiency: a tiny MCA bank log loses recidivism evidence under load.
  McaLog log(4);
  for (int i = 0; i < 3; ++i) {
    log.Append(Record(i, 7, ExecUnit::kVector, 0xAA));
  }
  for (int i = 0; i < 4; ++i) {  // a burst from elsewhere pushes core 7 out
    log.Append(Record(10 + i, static_cast<uint64_t>(100 + i), ExecUnit::kIntAlu, 1));
  }
  const McaAnalysis analysis = AnalyzeMcaLog(log, 3);
  EXPECT_TRUE(analysis.recidivists.empty()) << "the culprit's records were overwritten";
}

}  // namespace
}  // namespace mercurial
