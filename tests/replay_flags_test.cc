// Tests for src/mitigate/replay.h (deterministic-replay replication) and src/common/flags.h.

#include <memory>

#include <gtest/gtest.h>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/mitigate/replay.h"

namespace mercurial {
namespace {

DefectSpec MulDefect(double rate) {
  DefectSpec spec;
  spec.unit = ExecUnit::kIntMul;
  spec.effect = DefectEffect::kRandomWrong;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

// A computation that consumes a VARIABLE number of non-deterministic inputs: the number of
// rounds itself depends on the first input. This is exactly what naive re-execution cannot
// replicate.
NonDeterministicComputation VariableComputation() {
  return [](SimCore& core,
            const std::function<StatusOr<uint64_t>()>& next_input) -> StatusOr<uint64_t> {
    const StatusOr<uint64_t> first = next_input();
    if (!first.ok()) {
      return first.status();
    }
    const uint64_t rounds = 4 + (*first % 5);
    uint64_t digest = *first;
    for (uint64_t r = 0; r < rounds; ++r) {
      const StatusOr<uint64_t> input = next_input();
      if (!input.ok()) {
        return input.status();
      }
      digest = core.Mul(digest | 1, *input | 1);
      digest = core.Alu(AluOp::kXor, digest, core.Alu(AluOp::kShr, digest, 31));
    }
    return digest;
  };
}

struct Pool {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit Pool(int n, int defective = -1, double rate = 1.0) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(800 + i)));
      if (i == defective) {
        owned.back()->AddDefect(MulDefect(rate));
      }
      ptrs.push_back(owned.back().get());
    }
  }
};

// --- ReplayLog -------------------------------------------------------------------------------

TEST(ReplayLogTest, RecordThenReplay) {
  ReplayLog log;
  Rng rng(1);
  std::vector<uint64_t> recorded;
  for (int i = 0; i < 5; ++i) {
    recorded.push_back(log.Record([&rng] { return rng.NextU64(); }));
  }
  log.Rewind();
  for (int i = 0; i < 5; ++i) {
    const auto value = log.Next();
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, recorded[i]);
  }
  EXPECT_TRUE(log.Exhausted());
  EXPECT_FALSE(log.Next().ok()) << "over-consumption must fail";
}

TEST(ReplayLogTest, RewindResets) {
  ReplayLog log;
  log.Record([] { return 7ull; });
  log.Rewind();
  EXPECT_EQ(*log.Next(), 7ull);
  log.Rewind();
  EXPECT_EQ(*log.Next(), 7ull);
}

// --- ReplayingExecutor -------------------------------------------------------------------------

TEST(ReplayTest, NonDeterministicComputationCertifiedOnHealthyPool) {
  Pool pool(3);
  ReplayingExecutor executor(pool.ptrs);
  Rng source_rng(9);
  const auto result =
      executor.Run(VariableComputation(), [&source_rng] { return source_rng.NextU64(); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(executor.stats().divergences, 0u);
  EXPECT_GT(executor.stats().recorded_inputs, 4u);
}

TEST(ReplayTest, TwoRunsDifferWithoutReplayButAgreeWithIt) {
  // Sanity: the computation really is non-deterministic (two recordings differ), yet replay
  // makes replicas agree.
  Pool pool(2);
  ReplayingExecutor executor(pool.ptrs);
  Rng source_rng(10);
  const auto source = [&source_rng] { return source_rng.NextU64(); };
  const auto a = executor.Run(VariableComputation(), source);
  const auto b = executor.Run(VariableComputation(), source);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b) << "fresh inputs each run: digests differ across runs";
  EXPECT_EQ(executor.stats().divergences, 0u) << "but replicas within a run agree";
}

TEST(ReplayTest, DefectiveReplicaOutvoted) {
  // Pool: (bad, good, good). Recording lands on the bad core in some runs, replay in others;
  // either way, two healthy replicas eventually agree on the replayed inputs.
  Pool pool(3, /*defective=*/0, /*rate=*/1.0);
  ReplayingExecutor executor(pool.ptrs);
  Rng source_rng(11);
  int success = 0;
  for (int i = 0; i < 20; ++i) {
    const auto result =
        executor.Run(VariableComputation(), [&source_rng] { return source_rng.NextU64(); });
    success += result.ok() ? 1 : 0;
  }
  EXPECT_EQ(success, 20);
  EXPECT_GT(executor.stats().divergences, 0u) << "the defective replica was seen disagreeing";
}

TEST(ReplayTest, AllBadPoolAborts) {
  Pool pool(2, /*defective=*/0, /*rate=*/1.0);
  pool.owned[1]->AddDefect(MulDefect(1.0));
  ReplayingExecutor executor(pool.ptrs);
  Rng source_rng(12);
  const auto result = executor.Run(VariableComputation(),
                                   [&source_rng] { return source_rng.NextU64(); },
                                   /*max_replays=*/3);
  // With every core randomly corrupting, agreement is (nearly) impossible.
  EXPECT_FALSE(result.ok());
}

// --- FlagSet -----------------------------------------------------------------------------------

TEST(FlagsTest, ParsesAllForms) {
  FlagSet flags;
  flags.DefineString("name", "default", "a string");
  flags.DefineInt("count", 5, "an int");
  flags.DefineDouble("rate", 0.5, "a double");
  flags.DefineBool("verbose", false, "a bool");

  const char* argv[] = {"prog", "--name=widget", "--count", "42", "--rate=2.5", "--verbose",
                        "positional"};
  ASSERT_TRUE(flags.Parse(7, argv).ok());
  EXPECT_EQ(flags.GetString("name"), "widget");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.5);
  EXPECT_TRUE(flags.GetBool("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsApplyWhenUnset) {
  FlagSet flags;
  flags.DefineInt("count", 5, "an int");
  flags.DefineBool("verbose", true, "a bool");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("count"), 5);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagSet flags;
  flags.DefineInt("count", 5, "an int");
  const char* argv[] = {"prog", "--typo=1"};
  const Status status = flags.Parse(2, argv);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadValuesRejected) {
  FlagSet flags;
  flags.DefineInt("count", 5, "an int");
  flags.DefineDouble("rate", 0.5, "a double");
  flags.DefineBool("verbose", false, "a bool");
  {
    const char* argv[] = {"prog", "--count=abc"};
    EXPECT_FALSE(flags.Parse(2, argv).ok());
  }
  {
    const char* argv[] = {"prog", "--rate=xyz"};
    EXPECT_FALSE(flags.Parse(2, argv).ok());
  }
  {
    const char* argv[] = {"prog", "--verbose=maybe"};
    EXPECT_FALSE(flags.Parse(2, argv).ok());
  }
}

TEST(FlagsTest, MissingValueRejected) {
  FlagSet flags;
  flags.DefineInt("count", 5, "an int");
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, BareBoolBeforeAnotherFlag) {
  FlagSet flags;
  flags.DefineBool("verbose", false, "a bool");
  flags.DefineInt("count", 5, "an int");
  const char* argv[] = {"prog", "--verbose", "--count=2"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetInt("count"), 2);
}

TEST(FlagsTest, UsageListsFlags) {
  FlagSet flags;
  flags.DefineInt("count", 5, "how many");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace mercurial
