// Tests for the quarantine control plane (src/detect/control_plane.h) and the detection-
// pipeline chaos injector (src/detect/chaos.h).
//
// The two load-bearing claims:
//
//   1. Transparency: at default options (chaos off) the control plane is bit-identical to the
//      legacy synchronous QuarantineManager::Process pipeline — same verdicts, same stats,
//      same scheduler transitions, same RNG draw order (EquivalentToLegacyProcessAtDefaults).
//   2. Resilience: under report-drop + interrogation-abort chaos, retry/backoff recovers at
//      least the no-retry baseline's true-positive retirements while the capacity guardrail
//      keeps pending-isolation core-seconds under budget, deterministically under a fixed
//      seed (ChaosRetriesRecoverAtLeastNoRetryBaseline).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fleet_study.h"
#include "src/detect/chaos.h"
#include "src/detect/control_plane.h"
#include "src/detect/quarantine.h"
#include "src/detect/report_service.h"
#include "src/detect/screening.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {
namespace {

Signal ScreenFailAt(SimTime t, const Fleet& fleet, uint64_t core) {
  return Signal{t, fleet.core_id(core).machine, core, SignalType::kScreenFail};
}

CeeReportService MakeService(Fleet& fleet) {
  return CeeReportService(ReportServiceOptions{}, [&fleet](uint64_t m) {
    return static_cast<uint32_t>(fleet.machine(m).core_count());
  });
}

void ExpectQuarantineStatsEqual(const QuarantineStats& a, const QuarantineStats& b) {
  EXPECT_EQ(a.suspects_processed, b.suspects_processed);
  EXPECT_EQ(a.accusations, b.accusations);
  EXPECT_EQ(a.confessions, b.confessions);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.retirements, b.retirements);
  EXPECT_EQ(a.recidivism_retirements, b.recidivism_retirements);
  EXPECT_EQ(a.interrogation_ops, b.interrogation_ops);
  EXPECT_EQ(a.true_positive_retirements, b.true_positive_retirements);
  EXPECT_EQ(a.false_positive_retirements, b.false_positive_retirements);
  EXPECT_EQ(a.missed_confessions, b.missed_confessions);
}

void ExpectSchedulerStatsEqual(const SchedulerStats& a, const SchedulerStats& b) {
  EXPECT_EQ(a.drains, b.drains);
  EXPECT_EQ(a.surprise_removals, b.surprise_removals);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.retirements, b.retirements);
  EXPECT_EQ(a.migration_cost_core_seconds, b.migration_cost_core_seconds);
  EXPECT_EQ(a.lost_work_core_seconds, b.lost_work_core_seconds);
  EXPECT_EQ(a.stranded_core_seconds, b.stranded_core_seconds);
}

// --- Options validation ---------------------------------------------------------------------

TEST(ControlPlaneOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ControlPlaneOptions{}.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsNegativeRetries) {
  ControlPlaneOptions options;
  options.max_retries = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsRetriesWithoutBackoff) {
  ControlPlaneOptions options;
  options.max_retries = 2;
  options.retry_backoff = SimTime::Seconds(0);
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsJitterOutsideUnitInterval) {
  ControlPlaneOptions options;
  options.retry_jitter = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.retry_jitter = -0.1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsBudgetOutsideHalfOpenInterval) {
  ControlPlaneOptions options;
  options.quarantine_budget_fraction = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.quarantine_budget_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.quarantine_budget_fraction = 1.0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsInvalidChaos) {
  ControlPlaneOptions options;
  options.chaos.drop_report = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.chaos.drop_report = 0.5;
  EXPECT_TRUE(options.Validate().ok());
  options.chaos.machine_restart_per_day = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options.chaos.machine_restart_per_day = 0.0;
  options.chaos.delay_report = 0.5;
  options.chaos.report_delay_mean = SimTime::Seconds(0);
  EXPECT_FALSE(options.Validate().ok());
}

// --- Chaos injector -------------------------------------------------------------------------

TEST(ChaosInjectorTest, DisabledInjectorIsTransparent) {
  ChaosInjector chaos(ChaosOptions{}, Rng(1));
  EXPECT_FALSE(chaos.enabled());
  std::vector<Signal> deliver;
  chaos.InjectReport(Signal{SimTime::Days(1), 0, 7, SignalType::kCrash}, deliver);
  ASSERT_EQ(deliver.size(), 1u);
  EXPECT_EQ(deliver[0].core_global, 7u);
  double fraction = 1.0;
  EXPECT_FALSE(chaos.AbortInterrogation(&fraction));
  EXPECT_TRUE(chaos.DrawRestarts(SimTime::Days(1), {0, 1, 2}).empty());
  EXPECT_EQ(chaos.stats().reports_dropped, 0u);
}

TEST(ChaosInjectorTest, DropAllLosesEveryReport) {
  ChaosOptions options;
  options.drop_report = 1.0;
  ChaosInjector chaos(options, Rng(2));
  std::vector<Signal> deliver;
  for (int i = 0; i < 10; ++i) {
    chaos.InjectReport(Signal{SimTime::Days(1), 0, 7, SignalType::kCrash}, deliver);
  }
  EXPECT_TRUE(deliver.empty());
  EXPECT_EQ(chaos.stats().reports_dropped, 10u);
}

TEST(ChaosInjectorTest, DuplicateAllDeliversTwice) {
  ChaosOptions options;
  options.duplicate_report = 1.0;
  ChaosInjector chaos(options, Rng(3));
  std::vector<Signal> deliver;
  chaos.InjectReport(Signal{SimTime::Days(1), 0, 7, SignalType::kCrash}, deliver);
  EXPECT_EQ(deliver.size(), 2u);
  EXPECT_EQ(chaos.stats().reports_duplicated, 1u);
}

TEST(ChaosInjectorTest, DelayedReportsArriveLaterInDueOrder) {
  ChaosOptions options;
  options.delay_report = 1.0;
  options.report_delay_mean = SimTime::Days(2);
  ChaosInjector chaos(options, Rng(4));
  std::vector<Signal> deliver;
  for (uint64_t core = 0; core < 5; ++core) {
    chaos.InjectReport(Signal{SimTime::Days(1), 0, core, SignalType::kCrash}, deliver);
  }
  EXPECT_TRUE(deliver.empty()) << "a delayed report is not delivered immediately";
  EXPECT_EQ(chaos.delayed_in_flight(), 5u);
  EXPECT_TRUE(chaos.FlushDelayed(SimTime::Days(1)).empty())
      << "exponential delays are strictly positive";
  const auto late = chaos.FlushDelayed(SimTime::Days(1000));
  EXPECT_EQ(late.size(), 5u);
  EXPECT_EQ(chaos.delayed_in_flight(), 0u);
  EXPECT_EQ(chaos.stats().reports_delayed, 5u);
}

TEST(ChaosInjectorTest, RestartsDrawFromInstalledMachines) {
  ChaosOptions options;
  options.machine_restart_per_day = 5.0;  // mean 15 restarts/tick over 3 machines
  ChaosInjector chaos(options, Rng(5));
  const std::vector<uint64_t> installed = {10, 20, 30};
  const auto restarted = chaos.DrawRestarts(SimTime::Days(1), installed);
  ASSERT_FALSE(restarted.empty());
  for (uint64_t machine : restarted) {
    EXPECT_TRUE(machine == 10 || machine == 20 || machine == 30);
  }
  for (size_t i = 1; i < restarted.size(); ++i) {
    EXPECT_LT(restarted[i - 1], restarted[i]) << "sorted and deduplicated";
  }
}

// --- Transparency: defaults are the legacy pipeline -----------------------------------------

// Runs the same 40-day suspicion workload through (a) the legacy synchronous
// QuarantineManager::Process loop and (b) the control plane at default options, against twin
// same-seed fleets, and requires bit-identical verdicts, stats, and scheduler accounting.
// The plane's control stream is seeded differently on purpose: transparency requires that it
// is never drawn from at defaults.
TEST(ControlPlaneTest, EquivalentToLegacyProcessAtDefaults) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 10;
  fleet_options.mercurial_rate_multiplier = 300.0;
  Fleet fleet_a = Fleet::Build(fleet_options);
  Fleet fleet_b = Fleet::Build(fleet_options);
  ASSERT_FALSE(fleet_a.mercurial_cores().empty());

  CoreScheduler sched_a(fleet_a.core_count(), SchedulerCosts{});
  CoreScheduler sched_b(fleet_b.core_count(), SchedulerCosts{});
  CeeReportService service_a = MakeService(fleet_a);
  CeeReportService service_b = MakeService(fleet_b);

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 64;
  QuarantineManager legacy(policy, Rng(7));
  QuarantineControlPlane plane(ControlPlaneOptions{}, policy, Rng(7), Rng(0xdead));

  const SimTime dt = SimTime::Days(1);
  for (int day = 1; day <= 40; ++day) {
    const SimTime now = SimTime::Days(day);
    fleet_a.SetAges(now);
    fleet_b.SetAges(now);

    // Identical signal stream into both arms: accuse every active mercurial core, plus a
    // healthy decoy every 5th day (exercises release + re-accusation + recidivism paths).
    std::vector<uint64_t> accused = fleet_a.mercurial_cores();
    if (day % 5 == 0) {
      accused.push_back(1);
    }
    for (uint64_t core : accused) {
      service_a.Report(ScreenFailAt(now, fleet_a, core));
      plane.Report(ScreenFailAt(now, fleet_b, core), service_b);
    }

    const auto suspects = service_a.Suspects(now);
    const auto verdicts_a = legacy.Process(now, suspects, fleet_a, sched_a, service_a);
    const auto verdicts_b = plane.Tick(now, dt, fleet_b, sched_b, service_b, nullptr);

    ASSERT_EQ(verdicts_a.size(), verdicts_b.size()) << "day " << day;
    for (size_t v = 0; v < verdicts_a.size(); ++v) {
      EXPECT_EQ(verdicts_a[v].core_global, verdicts_b[v].core_global) << "day " << day;
      EXPECT_EQ(verdicts_a[v].confessed, verdicts_b[v].confessed) << "day " << day;
      EXPECT_EQ(verdicts_a[v].retired, verdicts_b[v].retired) << "day " << day;
    }
    sched_a.AccumulateStranding(dt);
    sched_b.AccumulateStranding(dt);
  }

  ExpectQuarantineStatsEqual(legacy.stats(), plane.manager().stats());
  ExpectSchedulerStatsEqual(sched_a.stats(), sched_b.stats());
  EXPECT_GT(legacy.stats().retirements, 0u) << "workload must exercise the verdict paths";
  EXPECT_GT(legacy.stats().releases, 0u);

  // The plane's own machinery must have stayed inert.
  const ControlPlaneStats& cp = plane.stats();
  EXPECT_EQ(cp.suspects_shed, 0u);
  EXPECT_EQ(cp.retries_scheduled, 0u);
  EXPECT_EQ(cp.drain_escalations, 0u);
  EXPECT_EQ(cp.guardrail_activations, 0u);
  EXPECT_EQ(cp.restarts_reset, 0u);
  EXPECT_EQ(plane.pending_count(), 0u) << "defaults resolve every suspect within its tick";
}

// --- Admission control ----------------------------------------------------------------------

TEST(ControlPlaneTest, AdmissionBoundShedsAndShedSuspectsRecandidate) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.max_pending = 1;
  options.drain_latency = SimTime::Days(3);  // keeps the admitted suspect resident for days
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(11), Rng(12));

  // Two simultaneous strong suspects, but room for only one.
  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 5));
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 6));
  }
  size_t verdicts = 0;
  for (int day = 1; day <= 20; ++day) {
    verdicts += plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service,
                           nullptr)
                    .size();
  }
  const ControlPlaneStats& stats = plane.stats();
  EXPECT_EQ(stats.suspects_admitted, 2u) << "the shed suspect re-candidates once there is room";
  EXPECT_GE(stats.suspects_shed, 1u);
  EXPECT_EQ(stats.queue_peak, 1u);
  EXPECT_EQ(verdicts, 2u) << "backpressure delays verdicts, it does not lose them";
  EXPECT_EQ(plane.manager().stats().releases, 2u) << "both healthy cores eventually cleared";
}

// --- Retry with backoff ---------------------------------------------------------------------

TEST(ControlPlaneTest, RetriesFollowExponentialBackoff) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.max_retries = 2;
  options.retry_backoff = SimTime::Days(2);
  options.retry_jitter = 0.0;  // deterministic schedule: attempts at day 1, 3, 7
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;  // isolate the retry machinery
  QuarantineControlPlane plane(options, policy, Rng(21), Rng(22));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 4));
  }
  std::vector<int> verdict_days;
  for (int day = 1; day <= 10; ++day) {
    const auto verdicts =
        plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr);
    if (!verdicts.empty()) {
      verdict_days.push_back(day);
    }
    if (day < 7) {
      EXPECT_EQ(static_cast<int>(scheduler.state(4)),
                static_cast<int>(CoreState::kQuarantined))
          << "stays quarantined between attempts (day " << day << ")";
    }
  }
  // Attempt 1 at day 1 -> retry at 1+2=3; attempt 2 at day 3 -> retry at 3+4=7; attempt 3 at
  // day 7 exhausts the budget and the healthy core is released.
  ASSERT_EQ(verdict_days.size(), 1u);
  EXPECT_EQ(verdict_days[0], 7);
  EXPECT_EQ(plane.stats().retries_scheduled, 2u);
  EXPECT_EQ(plane.stats().retry_interrogations, 2u);
  EXPECT_EQ(plane.manager().stats().releases, 1u);
  EXPECT_TRUE(scheduler.Schedulable(4));
}

// --- Drain model ----------------------------------------------------------------------------

TEST(ControlPlaneTest, GracefulDrainDelaysInterrogation) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(2);  // sampled completion in [2, 4) days
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(31), Rng(32));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 4));
  }
  int verdict_day = -1;
  for (int day = 1; day <= 10 && verdict_day < 0; ++day) {
    if (!plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr)
             .empty()) {
      verdict_day = day;
    }
  }
  EXPECT_GE(verdict_day, 3) << "interrogation must wait for the drain to complete";
  EXPECT_LE(verdict_day, 5);
  EXPECT_EQ(scheduler.stats().surprise_removals, 0u);
  EXPECT_EQ(plane.stats().drain_escalations, 0u);
}

TEST(ControlPlaneTest, DrainTimeoutEscalatesToSurpriseRemoval) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(3);  // sampled completion in [3, 6) days...
  options.drain_timeout = SimTime::Days(1);  // ...but the plane only waits one
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(41), Rng(42));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 4));
  }
  int verdict_day = -1;
  for (int day = 1; day <= 10 && verdict_day < 0; ++day) {
    if (!plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr)
             .empty()) {
      verdict_day = day;
    }
  }
  EXPECT_EQ(verdict_day, 2) << "escalation fires at admission + timeout";
  EXPECT_EQ(plane.stats().drain_escalations, 1u);
  EXPECT_EQ(scheduler.stats().surprise_removals, 1u);
  EXPECT_GT(scheduler.stats().lost_work_core_seconds, 0.0);
}

// --- Capacity guardrail ---------------------------------------------------------------------

TEST(ControlPlaneTest, GuardrailReleasesLeastSuspectAndThrottlesScreening) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 1;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ASSERT_GE(fleet.core_count(), 8u);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ScreeningOptions screening_options;
  screening_options.offline_period = SimTime::Days(30);
  ScreeningOrchestrator screening(screening_options, fleet.core_count(), Rng(50));

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(5);  // suspects park in the pipeline
  // Budget: at most 2 cores draining + quarantined.
  options.quarantine_budget_fraction = 2.5 / static_cast<double>(fleet.core_count());
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(51), Rng(52));

  // Four suspects with strictly increasing suspicion: core 1 weakest ... core 4 strongest.
  const SimTime now = SimTime::Days(1);
  for (uint64_t core = 1; core <= 4; ++core) {
    for (uint64_t r = 0; r < core; ++r) {
      service.Report(ScreenFailAt(now, fleet, core));
    }
  }
  plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, &screening);

  const ControlPlaneStats& stats = plane.stats();
  EXPECT_EQ(stats.guardrail_activations, 1u);
  EXPECT_EQ(stats.guardrail_releases, 2u);
  EXPECT_GE(stats.screening_deferrals, 1u) << "offline screens due soon must be pushed back";
  EXPECT_EQ(scheduler.pending_isolation_count(), 2u);
  EXPECT_TRUE(scheduler.Schedulable(1)) << "least-suspect core released first";
  EXPECT_TRUE(scheduler.Schedulable(2));
  EXPECT_EQ(static_cast<int>(scheduler.state(3)), static_cast<int>(CoreState::kDraining));
  EXPECT_EQ(static_cast<int>(scheduler.state(4)), static_cast<int>(CoreState::kDraining));
  EXPECT_EQ(plane.manager().stats().releases, 2u) << "guardrail releases count as releases";
}

// --- Machine restarts -----------------------------------------------------------------------

TEST(ControlPlaneTest, MachineRestartResetsInFlightQuarantine) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(10);  // suspect stays in flight
  options.chaos.machine_restart_per_day = 20.0;  // virtually certain restart each tick
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(61), Rng(62));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 0));
  }
  plane.Tick(SimTime::Days(1), SimTime::Days(1), fleet, scheduler, service, nullptr);
  ASSERT_EQ(plane.pending_count(), 1u);
  plane.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler, service, nullptr);

  EXPECT_EQ(plane.pending_count(), 0u);
  EXPECT_GE(plane.stats().restarts_reset, 1u);
  EXPECT_GE(plane.stats().chaos.machine_restarts, 1u);
  EXPECT_TRUE(scheduler.Schedulable(0)) << "the core reboots back into the schedule";
  EXPECT_EQ(plane.manager().stats().retirements, 0u) << "a reset is not a verdict";
}

// --- Resilience: chaos + retries + guardrail ------------------------------------------------

struct PipelineOutcome {
  QuarantineStats quarantine;
  ControlPlaneStats plane;
  SchedulerStats scheduler;
  size_t core_count = 0;
  int64_t duration_seconds = 0;
};

// Drives a perfectly informed accusation stream (every truly mercurial core accused daily)
// through the control plane for `days` simulated days. Chaos decides what survives the wire;
// the options under test decide how the pipeline copes.
PipelineOutcome RunChaosPipeline(const ControlPlaneOptions& options, uint64_t seed,
                                 int days = 60) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 12;
  fleet_options.mercurial_rate_multiplier = 400.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);
  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 64;
  QuarantineControlPlane plane(options, policy, Rng(seed), Rng(seed ^ 0x5eed));

  for (int day = 1; day <= days; ++day) {
    const SimTime now = SimTime::Days(day);
    fleet.SetAges(now);
    for (uint64_t core : fleet.mercurial_cores()) {
      if (scheduler.state(core) != CoreState::kActive) {
        continue;
      }
      plane.Report(ScreenFailAt(now, fleet, core), service);
    }
    plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, nullptr);
  }

  PipelineOutcome outcome;
  outcome.quarantine = plane.manager().stats();
  outcome.plane = plane.stats();
  outcome.scheduler = scheduler.stats();
  outcome.core_count = fleet.core_count();
  outcome.duration_seconds = SimTime::Days(days).seconds();
  return outcome;
}

ChaosOptions HarshChaos() {
  ChaosOptions chaos;
  chaos.drop_report = 0.4;
  chaos.abort_interrogation = 0.5;
  return chaos;
}

TEST(ControlPlaneTest, ChaosRetriesRecoverAtLeastNoRetryBaseline) {
  ControlPlaneOptions baseline;
  baseline.chaos = HarshChaos();

  ControlPlaneOptions resilient;
  resilient.chaos = HarshChaos();
  resilient.max_retries = 4;
  resilient.retry_backoff = SimTime::Days(1);
  resilient.quarantine_budget_fraction = 0.25;

  const PipelineOutcome base = RunChaosPipeline(baseline, 2021);
  const PipelineOutcome hardened = RunChaosPipeline(resilient, 2021);

  EXPECT_GT(base.plane.chaos.reports_dropped, 0u) << "chaos must actually bite";
  EXPECT_GT(hardened.plane.chaos.interrogations_aborted, 0u);
  EXPECT_GT(hardened.plane.retries_scheduled, 0u);

  // Retry/backoff must recover at least the no-retry baseline's true positives, and convert
  // evasive releases into confessions rather than waiting out recidivism.
  EXPECT_GE(hardened.quarantine.true_positive_retirements,
            base.quarantine.true_positive_retirements);
  EXPECT_GT(hardened.quarantine.confessions, base.quarantine.confessions);

  // The guardrail keeps reversible stranding under budget: never more than the budgeted core
  // count pending isolation, so the integral is bounded by budget * cores * duration.
  const double budget_cores =
      std::floor(resilient.quarantine_budget_fraction * static_cast<double>(hardened.core_count));
  EXPECT_LE(hardened.plane.peak_pending_isolation, static_cast<uint64_t>(budget_cores));
  EXPECT_LE(hardened.plane.pending_isolation_core_seconds,
            budget_cores * static_cast<double>(hardened.duration_seconds));
}

TEST(ControlPlaneTest, ChaosPipelineIsDeterministicUnderFixedSeed) {
  ControlPlaneOptions options;
  options.chaos = HarshChaos();
  options.chaos.delay_report = 0.2;
  options.chaos.machine_restart_per_day = 0.01;
  options.max_retries = 3;
  options.retry_backoff = SimTime::Days(1);
  options.quarantine_budget_fraction = 0.25;
  options.drain_latency = SimTime::Hours(6);
  options.drain_timeout = SimTime::Days(2);

  const PipelineOutcome a = RunChaosPipeline(options, 99, /*days=*/45);
  const PipelineOutcome b = RunChaosPipeline(options, 99, /*days=*/45);
  ExpectQuarantineStatsEqual(a.quarantine, b.quarantine);
  ExpectSchedulerStatsEqual(a.scheduler, b.scheduler);
  EXPECT_EQ(a.plane.suspects_admitted, b.plane.suspects_admitted);
  EXPECT_EQ(a.plane.suspects_shed, b.plane.suspects_shed);
  EXPECT_EQ(a.plane.retries_scheduled, b.plane.retries_scheduled);
  EXPECT_EQ(a.plane.drain_escalations, b.plane.drain_escalations);
  EXPECT_EQ(a.plane.guardrail_releases, b.plane.guardrail_releases);
  EXPECT_EQ(a.plane.restarts_reset, b.plane.restarts_reset);
  EXPECT_EQ(a.plane.pending_isolation_core_seconds, b.plane.pending_isolation_core_seconds);
  EXPECT_EQ(a.plane.chaos.reports_dropped, b.plane.chaos.reports_dropped);
  EXPECT_EQ(a.plane.chaos.reports_delayed, b.plane.chaos.reports_delayed);
  EXPECT_EQ(a.plane.chaos.interrogations_aborted, b.plane.chaos.interrogations_aborted);
  EXPECT_EQ(a.plane.chaos.machine_restarts, b.plane.chaos.machine_restarts);
}

// --- Whole-study integration ----------------------------------------------------------------

StudyOptions ChaosStudyOptions(int threads) {
  StudyOptions options;
  options.seed = 777;
  options.fleet.machine_count = 60;
  options.fleet.mercurial_rate_multiplier = 150.0;
  options.workload.payload_bytes = 256;
  options.work_units_per_core_day = 20;
  options.duration = SimTime::Days(90);
  options.screening.offline_period = SimTime::Days(30);
  options.shards = 8;
  options.threads = threads;
  options.control_plane.max_retries = 2;
  options.control_plane.retry_backoff = SimTime::Days(2);
  options.control_plane.quarantine_budget_fraction = 0.2;
  options.control_plane.drain_latency = SimTime::Hours(12);
  options.control_plane.chaos.drop_report = 0.2;
  options.control_plane.chaos.duplicate_report = 0.1;
  options.control_plane.chaos.delay_report = 0.1;
  options.control_plane.chaos.abort_interrogation = 0.3;
  options.control_plane.chaos.machine_restart_per_day = 0.002;
  return options;
}

// The control plane and chaos injector run entirely in the serial phase, so a chaotic study
// must still be thread-count invariant (the sharded engine's core contract).
TEST(ControlPlaneStudyTest, ChaoticStudyIsThreadCountInvariant) {
  FleetStudy study_1(ChaosStudyOptions(1));
  const StudyReport a = study_1.Run();
  FleetStudy study_4(ChaosStudyOptions(4));
  const StudyReport b = study_4.Run();

  ExpectQuarantineStatsEqual(a.quarantine, b.quarantine);
  ExpectSchedulerStatsEqual(a.scheduler, b.scheduler);
  EXPECT_EQ(a.work_units_executed, b.work_units_executed);
  EXPECT_EQ(a.silent_corruptions, b.silent_corruptions);
  EXPECT_EQ(a.screen_failures, b.screen_failures);
  EXPECT_EQ(a.mercurial_retired, b.mercurial_retired);
  EXPECT_EQ(a.control_plane.suspects_admitted, b.control_plane.suspects_admitted);
  EXPECT_EQ(a.control_plane.suspects_shed, b.control_plane.suspects_shed);
  EXPECT_EQ(a.control_plane.retries_scheduled, b.control_plane.retries_scheduled);
  EXPECT_EQ(a.control_plane.guardrail_releases, b.control_plane.guardrail_releases);
  EXPECT_EQ(a.control_plane.restarts_reset, b.control_plane.restarts_reset);
  EXPECT_EQ(a.control_plane.pending_isolation_core_seconds,
            b.control_plane.pending_isolation_core_seconds);
  EXPECT_EQ(a.control_plane.chaos.reports_dropped, b.control_plane.chaos.reports_dropped);
  EXPECT_EQ(a.control_plane.chaos.interrogations_aborted,
            b.control_plane.chaos.interrogations_aborted);
  EXPECT_GT(a.control_plane.chaos.reports_dropped, 0u) << "chaos must be active in this study";
}

TEST(ControlPlaneStudyTest, StudyRejectsInvalidControlPlaneOptions) {
  StudyOptions options;
  options.fleet.machine_count = 4;
  options.duration = SimTime::Days(2);
  options.control_plane.quarantine_budget_fraction = 0.0;
  FleetStudy study(options);
  EXPECT_DEATH(study.Run(), "quarantine_budget_fraction");
}

}  // namespace
}  // namespace mercurial
