// Tests for the quarantine control plane (src/detect/control_plane.h) and the detection-
// pipeline chaos injector (src/detect/chaos.h).
//
// The two load-bearing claims:
//
//   1. Transparency: at default options (chaos off) the control plane is bit-identical to the
//      legacy synchronous QuarantineManager::Process pipeline — same verdicts, same stats,
//      same scheduler transitions, same RNG draw order (EquivalentToLegacyProcessAtDefaults).
//   2. Resilience: under report-drop + interrogation-abort chaos, retry/backoff recovers at
//      least the no-retry baseline's true-positive retirements while the capacity guardrail
//      keeps pending-isolation core-seconds under budget, deterministically under a fixed
//      seed (ChaosRetriesRecoverAtLeastNoRetryBaseline).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fleet_study.h"
#include "src/detect/chaos.h"
#include "src/detect/confession.h"
#include "src/detect/control_plane.h"
#include "src/detect/quarantine.h"
#include "src/detect/quorum.h"
#include "src/detect/report_service.h"
#include "src/detect/screening.h"
#include "src/fleet/fleet.h"
#include "src/sched/scheduler.h"

namespace mercurial {
namespace {

Signal ScreenFailAt(SimTime t, const Fleet& fleet, uint64_t core) {
  return Signal{t, fleet.core_id(core).machine, core, SignalType::kScreenFail};
}

CeeReportService MakeService(Fleet& fleet) {
  return CeeReportService(ReportServiceOptions{}, [&fleet](uint64_t m) {
    return static_cast<uint32_t>(fleet.machine(m).core_count());
  });
}

void ExpectQuarantineStatsEqual(const QuarantineStats& a, const QuarantineStats& b) {
  EXPECT_EQ(a.suspects_processed, b.suspects_processed);
  EXPECT_EQ(a.accusations, b.accusations);
  EXPECT_EQ(a.confessions, b.confessions);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.retirements, b.retirements);
  EXPECT_EQ(a.recidivism_retirements, b.recidivism_retirements);
  EXPECT_EQ(a.interrogation_ops, b.interrogation_ops);
  EXPECT_EQ(a.true_positive_retirements, b.true_positive_retirements);
  EXPECT_EQ(a.false_positive_retirements, b.false_positive_retirements);
  EXPECT_EQ(a.missed_confessions, b.missed_confessions);
}

void ExpectSchedulerStatsEqual(const SchedulerStats& a, const SchedulerStats& b) {
  EXPECT_EQ(a.drains, b.drains);
  EXPECT_EQ(a.surprise_removals, b.surprise_removals);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.retirements, b.retirements);
  EXPECT_EQ(a.migration_cost_core_seconds, b.migration_cost_core_seconds);
  EXPECT_EQ(a.lost_work_core_seconds, b.lost_work_core_seconds);
  EXPECT_EQ(a.stranded_core_seconds, b.stranded_core_seconds);
}

// --- Options validation ---------------------------------------------------------------------

TEST(ControlPlaneOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ControlPlaneOptions{}.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsNegativeRetries) {
  ControlPlaneOptions options;
  options.max_retries = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsRetriesWithoutBackoff) {
  ControlPlaneOptions options;
  options.max_retries = 2;
  options.retry_backoff = SimTime::Seconds(0);
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsJitterOutsideUnitInterval) {
  ControlPlaneOptions options;
  options.retry_jitter = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.retry_jitter = -0.1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsBudgetOutsideHalfOpenInterval) {
  ControlPlaneOptions options;
  options.quarantine_budget_fraction = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.quarantine_budget_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.quarantine_budget_fraction = 1.0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ControlPlaneOptionsTest, RejectsInvalidChaos) {
  ControlPlaneOptions options;
  options.chaos.drop_report = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.chaos.drop_report = 0.5;
  EXPECT_TRUE(options.Validate().ok());
  options.chaos.machine_restart_per_day = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options.chaos.machine_restart_per_day = 0.0;
  options.chaos.delay_report = 0.5;
  options.chaos.report_delay_mean = SimTime::Seconds(0);
  EXPECT_FALSE(options.Validate().ok());
}

// One invalid field at a time, each starting from valid defaults, so every range check in
// QuorumOptions::Validate is individually proven to fire (and to name its own field).
TEST(ControlPlaneOptionsTest, RejectsInvalidQuorumOptions) {
  {
    ControlPlaneOptions options;
    options.quorum.witnesses = 0;
    EXPECT_FALSE(options.Validate().ok()) << "witnesses = 0";
  }
  {
    ControlPlaneOptions options;
    options.quorum.witnesses = -3;
    EXPECT_FALSE(options.Validate().ok()) << "negative witnesses";
  }
  {
    ControlPlaneOptions options;
    options.quorum.max_escalations = -1;
    EXPECT_FALSE(options.Validate().ok()) << "negative max_escalations";
  }
  {
    ControlPlaneOptions options;
    options.quorum.witness_error_rate = 1.5;
    EXPECT_FALSE(options.Validate().ok()) << "witness_error_rate > 1";
  }
  {
    ControlPlaneOptions options;
    options.quorum.witness_error_rate = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(options.Validate().ok()) << "NaN witness_error_rate";
  }
  {
    ControlPlaneOptions options;
    options.quorum.strong_agreement = -0.1;
    EXPECT_FALSE(options.Validate().ok()) << "negative strong_agreement";
  }
  {
    ControlPlaneOptions options;
    options.quorum.enabled = true;  // the largest valid configuration must still pass
    options.quorum.witnesses = 1;
    options.quorum.max_escalations = 0;
    options.quorum.witness_error_rate = 1.0;
    options.quorum.strong_agreement = 0.0;
    EXPECT_TRUE(options.Validate().ok());
  }
}

TEST(ControlPlaneOptionsTest, RejectsInvalidProbationOptions) {
  {
    ControlPlaneOptions options;
    options.probation.window = SimTime::Seconds(0);
    EXPECT_FALSE(options.Validate().ok()) << "zero window";
  }
  {
    ControlPlaneOptions options;
    options.probation.window = SimTime::Seconds(-5);
    EXPECT_FALSE(options.Validate().ok()) << "negative window";
  }
  {
    ControlPlaneOptions options;
    options.probation.clean_windows_to_reinstate = 0;
    EXPECT_FALSE(options.Validate().ok()) << "zero clean windows";
  }
  {
    ControlPlaneOptions options;
    options.probation.weak_after_attempts = -1;
    EXPECT_FALSE(options.Validate().ok()) << "negative weak_after_attempts";
  }
  {
    ControlPlaneOptions options;
    options.probation.enabled = true;
    options.probation.window = SimTime::Seconds(1);
    options.probation.clean_windows_to_reinstate = 1;
    options.probation.weak_after_attempts = 0;  // 0 = criterion disabled, still valid
    EXPECT_TRUE(options.Validate().ok());
  }
}

TEST(ControlPlaneOptionsTest, RejectsInvalidVerdictChaos) {
  {
    ControlPlaneOptions options;
    options.chaos.lying_witness = 1.5;
    EXPECT_FALSE(options.Validate().ok()) << "lying_witness > 1";
  }
  {
    ControlPlaneOptions options;
    options.chaos.witness_crash = -0.1;
    EXPECT_FALSE(options.Validate().ok()) << "negative witness_crash";
  }
  {
    ControlPlaneOptions options;
    options.chaos.probation_suppress = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(options.Validate().ok()) << "NaN probation_suppress";
  }
  {
    ControlPlaneOptions options;
    options.chaos.lying_witness = 1.0;
    options.chaos.witness_crash = 1.0;
    options.chaos.probation_suppress = 1.0;
    EXPECT_TRUE(options.Validate().ok());
  }
}

// --- Chaos injector -------------------------------------------------------------------------

TEST(ChaosInjectorTest, DisabledInjectorIsTransparent) {
  ChaosInjector chaos(ChaosOptions{}, Rng(1));
  EXPECT_FALSE(chaos.enabled());
  std::vector<Signal> deliver;
  chaos.InjectReport(Signal{SimTime::Days(1), 0, 7, SignalType::kCrash}, deliver);
  ASSERT_EQ(deliver.size(), 1u);
  EXPECT_EQ(deliver[0].core_global, 7u);
  double fraction = 1.0;
  EXPECT_FALSE(chaos.AbortInterrogation(&fraction));
  EXPECT_TRUE(chaos.DrawRestarts(SimTime::Days(1), {0, 1, 2}).empty());
  EXPECT_EQ(chaos.stats().reports_dropped, 0u);
}

TEST(ChaosInjectorTest, DropAllLosesEveryReport) {
  ChaosOptions options;
  options.drop_report = 1.0;
  ChaosInjector chaos(options, Rng(2));
  std::vector<Signal> deliver;
  for (int i = 0; i < 10; ++i) {
    chaos.InjectReport(Signal{SimTime::Days(1), 0, 7, SignalType::kCrash}, deliver);
  }
  EXPECT_TRUE(deliver.empty());
  EXPECT_EQ(chaos.stats().reports_dropped, 10u);
}

TEST(ChaosInjectorTest, DuplicateAllDeliversTwice) {
  ChaosOptions options;
  options.duplicate_report = 1.0;
  ChaosInjector chaos(options, Rng(3));
  std::vector<Signal> deliver;
  chaos.InjectReport(Signal{SimTime::Days(1), 0, 7, SignalType::kCrash}, deliver);
  EXPECT_EQ(deliver.size(), 2u);
  EXPECT_EQ(chaos.stats().reports_duplicated, 1u);
}

TEST(ChaosInjectorTest, DelayedReportsArriveLaterInDueOrder) {
  ChaosOptions options;
  options.delay_report = 1.0;
  options.report_delay_mean = SimTime::Days(2);
  ChaosInjector chaos(options, Rng(4));
  std::vector<Signal> deliver;
  for (uint64_t core = 0; core < 5; ++core) {
    chaos.InjectReport(Signal{SimTime::Days(1), 0, core, SignalType::kCrash}, deliver);
  }
  EXPECT_TRUE(deliver.empty()) << "a delayed report is not delivered immediately";
  EXPECT_EQ(chaos.delayed_in_flight(), 5u);
  EXPECT_TRUE(chaos.FlushDelayed(SimTime::Days(1)).empty())
      << "exponential delays are strictly positive";
  const auto late = chaos.FlushDelayed(SimTime::Days(1000));
  EXPECT_EQ(late.size(), 5u);
  EXPECT_EQ(chaos.delayed_in_flight(), 0u);
  EXPECT_EQ(chaos.stats().reports_delayed, 5u);
}

TEST(ChaosInjectorTest, RestartsDrawFromInstalledMachines) {
  ChaosOptions options;
  options.machine_restart_per_day = 5.0;  // mean 15 restarts/tick over 3 machines
  ChaosInjector chaos(options, Rng(5));
  const std::vector<uint64_t> installed = {10, 20, 30};
  const auto restarted = chaos.DrawRestarts(SimTime::Days(1), installed);
  ASSERT_FALSE(restarted.empty());
  for (uint64_t machine : restarted) {
    EXPECT_TRUE(machine == 10 || machine == 20 || machine == 30);
  }
  for (size_t i = 1; i < restarted.size(); ++i) {
    EXPECT_LT(restarted[i - 1], restarted[i]) << "sorted and deduplicated";
  }
}

// --- Quorum interrogator --------------------------------------------------------------------

// A healthy fleet for witness duty: no mercurial cores, so every witness reports the battery
// outcome faithfully unless chaos interferes.
struct QuorumBench {
  QuorumBench()
      : fleet([] {
          FleetOptions options;
          options.machine_count = 2;
          options.mercurial_rate_multiplier = 0.0;
          return Fleet::Build(options);
        }()),
        scheduler(fleet.core_count(), SchedulerCosts{}) {}

  Fleet fleet;
  CoreScheduler scheduler;
};

TEST(QuorumInterrogatorTest, FaithfulWitnessesConfirmUnanimously) {
  QuorumBench bench;
  QuorumOptions options;
  options.enabled = true;
  options.witnesses = 3;
  QuorumInterrogator quorum(options, Rng(5));
  ChaosInjector chaos(ChaosOptions{}, Rng(6));

  const QuorumVerdict guilty = quorum.Judge(0, /*tester_confessed=*/true, bench.fleet,
                                            bench.scheduler, chaos);
  EXPECT_TRUE(guilty.confessed);
  EXPECT_EQ(guilty.votes_for, 3);
  EXPECT_EQ(guilty.votes_against, 0);
  EXPECT_EQ(guilty.escalations, 0);
  EXPECT_FALSE(guilty.fell_back);
  EXPECT_EQ(guilty.agreement, 1.0);

  const QuorumVerdict clean = quorum.Judge(0, /*tester_confessed=*/false, bench.fleet,
                                           bench.scheduler, chaos);
  EXPECT_FALSE(clean.confessed);
  EXPECT_EQ(clean.votes_for, 3);

  EXPECT_EQ(quorum.stats().judgments, 2u);
  EXPECT_EQ(quorum.stats().votes_cast, 6u);
  EXPECT_EQ(quorum.stats().splits, 0u);
  EXPECT_EQ(quorum.stats().overrides, 0u);
  EXPECT_EQ(quorum.stats().fallbacks, 0u);
}

TEST(QuorumInterrogatorTest, MajorityOutvotesLyingMinority) {
  QuorumBench bench;
  QuorumOptions options;
  options.enabled = true;
  options.witnesses = 3;
  QuorumInterrogator quorum(options, Rng(7));
  ChaosOptions chaos_options;
  chaos_options.lying_witness = 0.2;  // per-vote flip; an override needs 2 of 3 flipped
  ChaosInjector chaos(chaos_options, Rng(8));

  const uint64_t judgments = 300;
  for (uint64_t i = 0; i < judgments; ++i) {
    quorum.Judge(0, /*tester_confessed=*/true, bench.fleet, bench.scheduler, chaos);
  }
  EXPECT_GT(chaos.stats().witnesses_lied, 0u) << "chaos must actually flip votes";
  EXPECT_GT(quorum.stats().overrides, 0u) << "a lying majority occasionally forms";
  // The point of the quorum: most flipped votes are outvoted, so overrides (wrong verdicts)
  // are far rarer than the lies themselves (~10% of judgments at p=0.2 vs ~60% with a vote
  // flipped). With a lone tester every one of those flips would have been a wrong verdict.
  EXPECT_LT(quorum.stats().overrides, judgments / 4);
  EXPECT_GT(chaos.stats().witnesses_lied, 2 * quorum.stats().overrides);
}

TEST(QuorumInterrogatorTest, AllWitnessesCrashingEscalatesThenFallsBack) {
  QuorumBench bench;
  QuorumOptions options;
  options.enabled = true;
  options.witnesses = 3;
  options.max_escalations = 2;
  QuorumInterrogator quorum(options, Rng(9));
  ChaosOptions chaos_options;
  chaos_options.witness_crash = 1.0;  // every seated witness dies mid-vote
  ChaosInjector chaos(chaos_options, Rng(10));

  const QuorumVerdict verdict =
      quorum.Judge(0, /*tester_confessed=*/true, bench.fleet, bench.scheduler, chaos);
  EXPECT_TRUE(verdict.fell_back) << "no vote was ever cast; the lone tester decided";
  EXPECT_TRUE(verdict.confessed) << "the fallback preserves the tester's verdict";
  EXPECT_EQ(verdict.votes_for, 0);
  EXPECT_EQ(verdict.votes_against, 0);
  EXPECT_EQ(verdict.escalations, 2);
  EXPECT_EQ(verdict.agreement, 0.5) << "a fallback verdict is weak evidence by definition";

  // Rounds of 3, 7, and 15 witnesses were seated and all crashed.
  EXPECT_EQ(quorum.stats().splits, 3u);
  EXPECT_EQ(quorum.stats().escalations, 2u);
  EXPECT_EQ(quorum.stats().fallbacks, 1u);
  EXPECT_EQ(quorum.stats().votes_cast, 0u);
  EXPECT_GE(chaos.stats().witnesses_crashed, 15u);
}

TEST(QuorumInterrogatorTest, PackedDetailRoundTrips) {
  QuorumVerdict verdict;
  verdict.confessed = true;
  verdict.votes_for = 5;
  verdict.votes_against = 2;
  verdict.escalations = 1;
  verdict.fell_back = false;
  const QuorumVerdict back = UnpackQuorumDetail(PackQuorumDetail(verdict));
  EXPECT_EQ(back.confessed, verdict.confessed);
  EXPECT_EQ(back.votes_for, verdict.votes_for);
  EXPECT_EQ(back.votes_against, verdict.votes_against);
  EXPECT_EQ(back.escalations, verdict.escalations);
  EXPECT_EQ(back.fell_back, verdict.fell_back);
  EXPECT_NEAR(back.agreement, 5.0 / 7.0, 1e-12);

  QuorumVerdict fallback;
  fallback.confessed = false;
  fallback.fell_back = true;
  fallback.votes_for = 0;
  fallback.votes_against = 0;
  const QuorumVerdict fallback_back = UnpackQuorumDetail(PackQuorumDetail(fallback));
  EXPECT_TRUE(fallback_back.fell_back);
  EXPECT_EQ(fallback_back.agreement, 0.5);
}

// --- Transparency: defaults are the legacy pipeline -----------------------------------------

// Runs the same 40-day suspicion workload through (a) the legacy synchronous
// QuarantineManager::Process loop and (b) the control plane at default options, against twin
// same-seed fleets, and requires bit-identical verdicts, stats, and scheduler accounting.
// The plane's control stream is seeded differently on purpose: transparency requires that it
// is never drawn from at defaults.
TEST(ControlPlaneTest, EquivalentToLegacyProcessAtDefaults) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 10;
  fleet_options.mercurial_rate_multiplier = 300.0;
  Fleet fleet_a = Fleet::Build(fleet_options);
  Fleet fleet_b = Fleet::Build(fleet_options);
  ASSERT_FALSE(fleet_a.mercurial_cores().empty());

  CoreScheduler sched_a(fleet_a.core_count(), SchedulerCosts{});
  CoreScheduler sched_b(fleet_b.core_count(), SchedulerCosts{});
  CeeReportService service_a = MakeService(fleet_a);
  CeeReportService service_b = MakeService(fleet_b);

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 64;
  QuarantineManager legacy(policy, Rng(7));
  QuarantineControlPlane plane(ControlPlaneOptions{}, policy, Rng(7), Rng(0xdead));

  const SimTime dt = SimTime::Days(1);
  for (int day = 1; day <= 40; ++day) {
    const SimTime now = SimTime::Days(day);
    fleet_a.SetAges(now);
    fleet_b.SetAges(now);

    // Identical signal stream into both arms: accuse every active mercurial core, plus a
    // healthy decoy every 5th day (exercises release + re-accusation + recidivism paths).
    std::vector<uint64_t> accused = fleet_a.mercurial_cores();
    if (day % 5 == 0) {
      accused.push_back(1);
    }
    for (uint64_t core : accused) {
      service_a.Report(ScreenFailAt(now, fleet_a, core));
      plane.Report(ScreenFailAt(now, fleet_b, core), service_b);
    }

    const auto suspects = service_a.Suspects(now);
    const auto verdicts_a = legacy.Process(now, suspects, fleet_a, sched_a, service_a);
    const auto verdicts_b = plane.Tick(now, dt, fleet_b, sched_b, service_b, nullptr);

    ASSERT_EQ(verdicts_a.size(), verdicts_b.size()) << "day " << day;
    for (size_t v = 0; v < verdicts_a.size(); ++v) {
      EXPECT_EQ(verdicts_a[v].core_global, verdicts_b[v].core_global) << "day " << day;
      EXPECT_EQ(verdicts_a[v].confessed, verdicts_b[v].confessed) << "day " << day;
      EXPECT_EQ(verdicts_a[v].retired, verdicts_b[v].retired) << "day " << day;
    }
    sched_a.AccumulateStranding(dt);
    sched_b.AccumulateStranding(dt);
  }

  ExpectQuarantineStatsEqual(legacy.stats(), plane.manager().stats());
  ExpectSchedulerStatsEqual(sched_a.stats(), sched_b.stats());
  EXPECT_GT(legacy.stats().retirements, 0u) << "workload must exercise the verdict paths";
  EXPECT_GT(legacy.stats().releases, 0u);

  // The plane's own machinery must have stayed inert.
  const ControlPlaneStats& cp = plane.stats();
  EXPECT_EQ(cp.suspects_shed, 0u);
  EXPECT_EQ(cp.retries_scheduled, 0u);
  EXPECT_EQ(cp.drain_escalations, 0u);
  EXPECT_EQ(cp.guardrail_activations, 0u);
  EXPECT_EQ(cp.restarts_reset, 0u);
  EXPECT_EQ(plane.pending_count(), 0u) << "defaults resolve every suspect within its tick";
}

// --- Admission control ----------------------------------------------------------------------

TEST(ControlPlaneTest, AdmissionBoundShedsAndShedSuspectsRecandidate) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.max_pending = 1;
  options.drain_latency = SimTime::Days(3);  // keeps the admitted suspect resident for days
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(11), Rng(12));

  // Two simultaneous strong suspects, but room for only one.
  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 5));
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 6));
  }
  size_t verdicts = 0;
  for (int day = 1; day <= 20; ++day) {
    verdicts += plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service,
                           nullptr)
                    .size();
  }
  const ControlPlaneStats& stats = plane.stats();
  EXPECT_EQ(stats.suspects_admitted, 2u) << "the shed suspect re-candidates once there is room";
  EXPECT_GE(stats.suspects_shed, 1u);
  EXPECT_EQ(stats.queue_peak, 1u);
  EXPECT_EQ(verdicts, 2u) << "backpressure delays verdicts, it does not lose them";
  EXPECT_EQ(plane.manager().stats().releases, 2u) << "both healthy cores eventually cleared";
}

// --- Retry with backoff ---------------------------------------------------------------------

TEST(ControlPlaneTest, RetriesFollowExponentialBackoff) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.max_retries = 2;
  options.retry_backoff = SimTime::Days(2);
  options.retry_jitter = 0.0;  // deterministic schedule: attempts at day 1, 3, 7
  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;  // isolate the retry machinery
  QuarantineControlPlane plane(options, policy, Rng(21), Rng(22));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 4));
  }
  std::vector<int> verdict_days;
  for (int day = 1; day <= 10; ++day) {
    const auto verdicts =
        plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr);
    if (!verdicts.empty()) {
      verdict_days.push_back(day);
    }
    if (day < 7) {
      EXPECT_EQ(static_cast<int>(scheduler.state(4)),
                static_cast<int>(CoreState::kQuarantined))
          << "stays quarantined between attempts (day " << day << ")";
    }
  }
  // Attempt 1 at day 1 -> retry at 1+2=3; attempt 2 at day 3 -> retry at 3+4=7; attempt 3 at
  // day 7 exhausts the budget and the healthy core is released.
  ASSERT_EQ(verdict_days.size(), 1u);
  EXPECT_EQ(verdict_days[0], 7);
  EXPECT_EQ(plane.stats().retries_scheduled, 2u);
  EXPECT_EQ(plane.stats().retry_interrogations, 2u);
  EXPECT_EQ(plane.manager().stats().releases, 1u);
  EXPECT_TRUE(scheduler.Schedulable(4));
}

// --- Drain model ----------------------------------------------------------------------------

TEST(ControlPlaneTest, GracefulDrainDelaysInterrogation) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(2);  // sampled completion in [2, 4) days
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(31), Rng(32));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 4));
  }
  int verdict_day = -1;
  for (int day = 1; day <= 10 && verdict_day < 0; ++day) {
    if (!plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr)
             .empty()) {
      verdict_day = day;
    }
  }
  EXPECT_GE(verdict_day, 3) << "interrogation must wait for the drain to complete";
  EXPECT_LE(verdict_day, 5);
  EXPECT_EQ(scheduler.stats().surprise_removals, 0u);
  EXPECT_EQ(plane.stats().drain_escalations, 0u);
}

TEST(ControlPlaneTest, DrainTimeoutEscalatesToSurpriseRemoval) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(3);  // sampled completion in [3, 6) days...
  options.drain_timeout = SimTime::Days(1);  // ...but the plane only waits one
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(41), Rng(42));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 4));
  }
  int verdict_day = -1;
  for (int day = 1; day <= 10 && verdict_day < 0; ++day) {
    if (!plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr)
             .empty()) {
      verdict_day = day;
    }
  }
  EXPECT_EQ(verdict_day, 2) << "escalation fires at admission + timeout";
  EXPECT_EQ(plane.stats().drain_escalations, 1u);
  EXPECT_EQ(scheduler.stats().surprise_removals, 1u);
  EXPECT_GT(scheduler.stats().lost_work_core_seconds, 0.0);
}

// --- Capacity guardrail ---------------------------------------------------------------------

TEST(ControlPlaneTest, GuardrailReleasesLeastSuspectAndThrottlesScreening) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 1;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ASSERT_GE(fleet.core_count(), 8u);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ScreeningOptions screening_options;
  screening_options.offline_period = SimTime::Days(30);
  ScreeningOrchestrator screening(screening_options, fleet.core_count(), Rng(50));

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(5);  // suspects park in the pipeline
  // Budget: at most 2 cores draining + quarantined.
  options.quarantine_budget_fraction = 2.5 / static_cast<double>(fleet.core_count());
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(51), Rng(52));

  // Four suspects with strictly increasing suspicion: core 1 weakest ... core 4 strongest.
  const SimTime now = SimTime::Days(1);
  for (uint64_t core = 1; core <= 4; ++core) {
    for (uint64_t r = 0; r < core; ++r) {
      service.Report(ScreenFailAt(now, fleet, core));
    }
  }
  plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, &screening);

  const ControlPlaneStats& stats = plane.stats();
  EXPECT_EQ(stats.guardrail_activations, 1u);
  EXPECT_EQ(stats.guardrail_releases, 2u);
  EXPECT_GE(stats.screening_deferrals, 1u) << "offline screens due soon must be pushed back";
  EXPECT_EQ(scheduler.pending_isolation_count(), 2u);
  EXPECT_TRUE(scheduler.Schedulable(1)) << "least-suspect core released first";
  EXPECT_TRUE(scheduler.Schedulable(2));
  EXPECT_EQ(static_cast<int>(scheduler.state(3)), static_cast<int>(CoreState::kDraining));
  EXPECT_EQ(static_cast<int>(scheduler.state(4)), static_cast<int>(CoreState::kDraining));
  EXPECT_EQ(plane.manager().stats().releases, 2u) << "guardrail releases count as releases";
}

// --- Machine restarts -----------------------------------------------------------------------

TEST(ControlPlaneTest, MachineRestartResetsInFlightQuarantine) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  ControlPlaneOptions options;
  options.drain_latency = SimTime::Days(10);  // suspect stays in flight
  options.chaos.machine_restart_per_day = 20.0;  // virtually certain restart each tick
  QuarantineControlPlane plane(options, QuarantinePolicy{}, Rng(61), Rng(62));

  for (int i = 0; i < 3; ++i) {
    service.Report(ScreenFailAt(SimTime::Days(1), fleet, 0));
  }
  plane.Tick(SimTime::Days(1), SimTime::Days(1), fleet, scheduler, service, nullptr);
  ASSERT_EQ(plane.pending_count(), 1u);
  plane.Tick(SimTime::Days(2), SimTime::Days(1), fleet, scheduler, service, nullptr);

  EXPECT_EQ(plane.pending_count(), 0u);
  EXPECT_GE(plane.stats().restarts_reset, 1u);
  EXPECT_GE(plane.stats().chaos.machine_restarts, 1u);
  EXPECT_TRUE(scheduler.Schedulable(0)) << "the core reboots back into the schedule";
  EXPECT_EQ(plane.manager().stats().retirements, 0u) << "a reset is not a verdict";
}

// --- Quorum verdicts in the pipeline --------------------------------------------------------

// With faithful witnesses (no mercurial cores erring, no chaos) the quorum unanimously
// confirms every battery, so the verdict stream must be identical to a quorum-off twin — the
// quorum draws only from its own dedicated stream and never perturbs the manager's.
TEST(ControlPlaneTest, FaithfulQuorumMatchesQuorumOffVerdicts) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 10;
  fleet_options.mercurial_rate_multiplier = 300.0;
  Fleet fleet_a = Fleet::Build(fleet_options);
  Fleet fleet_b = Fleet::Build(fleet_options);
  CoreScheduler sched_a(fleet_a.core_count(), SchedulerCosts{});
  CoreScheduler sched_b(fleet_b.core_count(), SchedulerCosts{});
  CeeReportService service_a = MakeService(fleet_a);
  CeeReportService service_b = MakeService(fleet_b);

  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 64;
  ControlPlaneOptions plain;
  ControlPlaneOptions quorum_on;
  quorum_on.quorum.enabled = true;
  quorum_on.quorum.witnesses = 3;
  quorum_on.quorum.witness_error_rate = 0.25;  // irrelevant: no witness is mercurial-active
  QuarantineControlPlane plane_a(plain, policy, Rng(7), Rng(0xaaaa));
  QuarantineControlPlane plane_b(quorum_on, policy, Rng(7), Rng(0xbbbb));

  for (int day = 1; day <= 40; ++day) {
    const SimTime now = SimTime::Days(day);
    fleet_a.SetAges(now);
    fleet_b.SetAges(now);
    std::vector<uint64_t> accused = fleet_a.mercurial_cores();
    if (day % 5 == 0) {
      accused.push_back(1);
    }
    for (uint64_t core : accused) {
      plane_a.Report(ScreenFailAt(now, fleet_a, core), service_a);
      plane_b.Report(ScreenFailAt(now, fleet_b, core), service_b);
    }
    const auto verdicts_a = plane_a.Tick(now, SimTime::Days(1), fleet_a, sched_a, service_a,
                                         nullptr);
    const auto verdicts_b = plane_b.Tick(now, SimTime::Days(1), fleet_b, sched_b, service_b,
                                         nullptr);
    ASSERT_EQ(verdicts_a.size(), verdicts_b.size()) << "day " << day;
    for (size_t v = 0; v < verdicts_a.size(); ++v) {
      EXPECT_EQ(verdicts_a[v].core_global, verdicts_b[v].core_global) << "day " << day;
      EXPECT_EQ(verdicts_a[v].confessed, verdicts_b[v].confessed) << "day " << day;
      EXPECT_EQ(verdicts_a[v].retired, verdicts_b[v].retired) << "day " << day;
    }
  }
  ExpectQuarantineStatsEqual(plane_a.manager().stats(), plane_b.manager().stats());
  EXPECT_GT(plane_b.stats().quorum.judgments, 0u) << "the quorum must actually judge";
  EXPECT_EQ(plane_b.stats().quorum.overrides, 0u) << "faithful witnesses never overturn";
  EXPECT_EQ(plane_b.stats().quorum.fallbacks, 0u);
  EXPECT_GT(plane_a.manager().stats().retirements, 0u);
}

// The false-conviction source the quorum exists to suppress: with testimony chaos and no
// quorum, the lone tester's flipped verdicts retire healthy cores; the same chaos rate with a
// 5-witness quorum needs a majority of votes flipped, which is far rarer.
TEST(ControlPlaneTest, QuorumSuppressesLyingTesterFalseConvictions) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 4;
  fleet_options.mercurial_rate_multiplier = 0.0;  // every conviction is a false positive

  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;  // isolate the lying-verdict path

  auto run = [&](bool quorum_enabled) {
    Fleet fleet = Fleet::Build(fleet_options);
    CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
    CeeReportService service = MakeService(fleet);
    ControlPlaneOptions options;
    options.chaos.lying_witness = 0.15;
    options.quorum.enabled = quorum_enabled;
    options.quorum.witnesses = 5;
    QuarantineControlPlane plane(options, policy, Rng(31), Rng(32));
    for (int day = 1; day <= 12; ++day) {
      const SimTime now = SimTime::Days(day);
      fleet.SetAges(now);
      for (uint64_t core = 1; core <= 8; ++core) {
        if (scheduler.Schedulable(core)) {
          for (int r = 0; r < 3; ++r) {
            plane.Report(ScreenFailAt(now, fleet, core), service);
          }
        }
      }
      plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, nullptr);
    }
    return plane.manager().stats().false_positive_retirements;
  };

  const uint64_t single_tester_fp = run(/*quorum_enabled=*/false);
  const uint64_t quorum_fp = run(/*quorum_enabled=*/true);
  EXPECT_GT(single_tester_fp, 0u) << "the lying tester must actually convict";
  EXPECT_LT(quorum_fp, single_tester_fp);
}

// --- Probation lifecycle --------------------------------------------------------------------

// A healthy core convicted on recidivism alone (weak evidence: no confession) must be held in
// probation and, after N clean shadow windows, reinstated — the false positive costs windows
// of restricted service instead of a permanently stranded core.
TEST(ControlPlaneTest, HealthyRecidivistReinstatesAfterCleanWindows) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  QuarantinePolicy policy;
  policy.recidivism_retire_after = 2;
  ControlPlaneOptions options;
  options.probation.enabled = true;
  options.probation.window = SimTime::Days(1);
  options.probation.clean_windows_to_reinstate = 3;
  QuarantineControlPlane plane(options, policy, Rng(41), Rng(42));
  int reinstatement_hook_calls = 0;
  plane.set_reinstatement_hook(
      [&reinstatement_hook_calls](SimTime, uint64_t core) {
        EXPECT_EQ(core, 4u);
        ++reinstatement_hook_calls;
      });

  // Day 1: first accusation, released. Day 2: re-accused, recidivism convicts — weakly.
  for (int day = 1; day <= 2; ++day) {
    const SimTime now = SimTime::Days(day);
    for (int r = 0; r < 3; ++r) {
      plane.Report(ScreenFailAt(now, fleet, 4), service);
    }
    const auto verdicts = plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, nullptr);
    ASSERT_EQ(verdicts.size(), 1u) << "day " << day;
    EXPECT_FALSE(verdicts[0].retired) << "probation holds the conviction open (day " << day
                                      << ")";
  }
  EXPECT_EQ(static_cast<int>(scheduler.state(4)), static_cast<int>(CoreState::kProbation));
  EXPECT_EQ(plane.probation_count(), 1u);
  EXPECT_EQ(plane.manager().stats().probation_entries, 1u);
  EXPECT_EQ(plane.manager().stats().retirements, 0u);
  EXPECT_EQ(scheduler.stats().probations, 1u);

  // Three clean shadow windows (healthy cores cannot confess), then reinstatement.
  for (int day = 3; day <= 5; ++day) {
    EXPECT_EQ(plane.probation_count(), 1u) << "day " << day;
    plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr);
  }
  EXPECT_TRUE(scheduler.Schedulable(4));
  EXPECT_EQ(plane.probation_count(), 0u);
  EXPECT_EQ(reinstatement_hook_calls, 1);
  EXPECT_EQ(plane.manager().stats().reinstatements, 1u);
  EXPECT_EQ(scheduler.stats().reinstatements, 1u);
  EXPECT_EQ(plane.manager().stats().retirements, 0u);
  EXPECT_EQ(plane.manager().stats().false_positive_retirements, 0u)
      << "the appeal path saved a healthy core from a wrongful retirement";
  EXPECT_EQ(plane.manager().stats().missed_confessions, 0u)
      << "reinstating a healthy core misses nothing";

  // The slate is clean: a later accusation starts the lifecycle over instead of escalating.
  for (int r = 0; r < 3; ++r) {
    plane.Report(ScreenFailAt(SimTime::Days(20), fleet, 4), service);
  }
  const auto verdicts =
      plane.Tick(SimTime::Days(20), SimTime::Days(1), fleet, scheduler, service, nullptr);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].retired) << "recidivism must re-accumulate after reinstatement";
  EXPECT_TRUE(scheduler.Schedulable(4));
}

// A fresh accusation while the conviction is held in appeal ends the appeal: straight to
// permanent retirement, no second interrogation.
TEST(ControlPlaneTest, FreshAccusationDuringProbationEscalatesToRetirement) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 2;
  fleet_options.mercurial_rate_multiplier = 0.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  QuarantinePolicy policy;
  policy.recidivism_retire_after = 2;
  ControlPlaneOptions options;
  options.probation.enabled = true;
  options.probation.window = SimTime::Days(30);  // no shadow window fires in this test
  options.probation.clean_windows_to_reinstate = 3;
  QuarantineControlPlane plane(options, policy, Rng(51), Rng(52));

  for (int day = 1; day <= 2; ++day) {
    for (int r = 0; r < 3; ++r) {
      plane.Report(ScreenFailAt(SimTime::Days(day), fleet, 4), service);
    }
    plane.Tick(SimTime::Days(day), SimTime::Days(1), fleet, scheduler, service, nullptr);
  }
  ASSERT_EQ(static_cast<int>(scheduler.state(4)), static_cast<int>(CoreState::kProbation));

  for (int r = 0; r < 3; ++r) {
    plane.Report(ScreenFailAt(SimTime::Days(3), fleet, 4), service);
  }
  const auto verdicts =
      plane.Tick(SimTime::Days(3), SimTime::Days(1), fleet, scheduler, service, nullptr);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].retired);
  EXPECT_EQ(static_cast<int>(scheduler.state(4)), static_cast<int>(CoreState::kRetired));
  EXPECT_EQ(plane.probation_count(), 0u);
  EXPECT_EQ(plane.manager().stats().probation_escalations, 1u);
  EXPECT_EQ(plane.manager().stats().retirements, 1u);
  EXPECT_EQ(plane.manager().stats().false_positive_retirements, 1u)
      << "ground truth: the healthy core was wrongly escalated (the accusations were noise)";
  EXPECT_EQ(plane.manager().stats().reinstatements, 0u);
}

// A quorum fallback (agreement 0.5) makes even a confessed conviction weak evidence: the core
// enters probation with its confessed units as the placement restriction.
TEST(ControlPlaneTest, FallbackVerdictDivertsConfessionToRestrictedProbation) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 10;
  fleet_options.mercurial_rate_multiplier = 300.0;
  Fleet fleet = Fleet::Build(fleet_options);
  ASSERT_FALSE(fleet.mercurial_cores().empty());
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);

  QuarantinePolicy policy;
  policy.recidivism_retire_after = 0;  // only confessions convict here
  ControlPlaneOptions options;
  options.quorum.enabled = true;
  options.quorum.witnesses = 3;
  options.quorum.max_escalations = 1;
  options.chaos.witness_crash = 1.0;  // every quorum round dies => every judgment falls back
  options.probation.enabled = true;
  options.probation.window = SimTime::Days(365);  // hold the record open for inspection
  options.probation.clean_windows_to_reinstate = 1;
  QuarantineControlPlane plane(options, policy, Rng(61), Rng(62));

  // Accuse every mercurial core daily until one confesses; the confession must land in
  // probation (weak: fallback agreement 0.5 < strong_agreement 1.0), not in retirement.
  bool entered_probation = false;
  uint64_t probation_core = 0;
  std::vector<ExecUnit> confessed_units;
  for (int day = 1; day <= 60 && !entered_probation; ++day) {
    const SimTime now = SimTime::Days(day);
    fleet.SetAges(now);
    for (uint64_t core : fleet.mercurial_cores()) {
      if (scheduler.Schedulable(core)) {
        for (int r = 0; r < 3; ++r) {
          plane.Report(ScreenFailAt(now, fleet, core), service);
        }
      }
    }
    const auto verdicts = plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, nullptr);
    for (const QuarantineVerdict& verdict : verdicts) {
      EXPECT_FALSE(verdict.retired) << "every conviction here is weak evidence";
      if (verdict.confessed) {
        entered_probation = true;
        probation_core = verdict.core_global;
        confessed_units = verdict.failed_units;
      }
    }
  }
  ASSERT_TRUE(entered_probation) << "no mercurial core confessed in 60 days";
  ASSERT_FALSE(confessed_units.empty()) << "a real confession names failed units";
  EXPECT_EQ(static_cast<int>(scheduler.state(probation_core)),
            static_cast<int>(CoreState::kProbation));
  EXPECT_GT(plane.stats().quorum.fallbacks, 0u);
  EXPECT_GE(plane.manager().stats().probation_entries, 1u);

  const std::vector<ExecUnit>* restricted = plane.ProbationRestrictedUnits(probation_core);
  ASSERT_NE(restricted, nullptr);
  EXPECT_EQ(*restricted, confessed_units)
      << "the placement restriction is exactly the confessed failed units";
  EXPECT_EQ(plane.ProbationRestrictedUnits(probation_core + 1), nullptr);
}

// A truly mercurial core that slips into probation is caught by the shadow screen (escalated),
// unless probation-signal suppression swallows the confessions — then the windows look clean
// and the defective core is wrongly reinstated, visibly: a missed confession is counted.
//
// Determinism comes from latent-defect aging: the accused core's defect onsets AFTER the
// conviction days, so the conviction batteries can only miss (fire probability is exactly 0
// before onset) and recidivism convicts on weak evidence. Once the defect ages in, the
// shadow screen's full-strength batteries start confessing.
TEST(ControlPlaneTest, ShadowConfessionEscalatesUnlessSuppressed) {
  // A large fleet with a high defect rate, so the probe below reliably finds a latent core.
  FleetOptions fleet_options;
  fleet_options.machine_count = 100;
  fleet_options.mercurial_rate_multiplier = 2000.0;

  QuarantinePolicy policy;
  policy.recidivism_retire_after = 2;

  // Probe an identical twin fleet for a latent core: every defect onsets after day 3 (so the
  // two conviction days deterministically miss), at least one onsets within 60 days, and the
  // standard battery confesses reliably once past onset.
  uint64_t accused = 0;
  int onset_days = 0;
  bool found = false;
  {
    Fleet probe_fleet = Fleet::Build(fleet_options);
    ConfessionTester probe_tester(policy.confession);
    Rng probe_rng(987);
    for (uint64_t core : probe_fleet.mercurial_cores()) {
      SimTime min_onset = SimTime::Days(1 << 20);
      for (const Defect& defect : probe_fleet.core(core).defects()) {
        if (defect.spec().aging.onset < min_onset) {
          min_onset = defect.spec().aging.onset;
        }
      }
      // Onset is measured in core AGE; machines install in the past, so the simulation day the
      // defect activates is onset + install_time (install times are negative).
      const SimTime install =
          probe_fleet.machine(probe_fleet.core_id(core).machine).install_time();
      const int64_t onset_day_seconds = min_onset.seconds() + install.seconds();
      if (onset_day_seconds <= SimTime::Days(3).seconds() ||
          onset_day_seconds > SimTime::Days(60).seconds()) {
        continue;
      }
      probe_fleet.SetAges(SimTime::Seconds(onset_day_seconds) + SimTime::Days(5));
      int hits = 0;
      for (int battery = 0; battery < 6; ++battery) {
        hits += probe_tester.Interrogate(probe_fleet.core(core), probe_rng).confessed ? 1 : 0;
      }
      if (hits >= 5) {
        accused = core;
        onset_days = static_cast<int>(onset_day_seconds / (24 * 3600)) + 1;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "no reliably-confessing latent-onset mercurial core in this fleet";

  // Drives the latent core into probation via recidivism (two accusation days before onset),
  // then lets shadow windows run with no further accusations.
  auto run = [&](double suppress, int clean_windows, int days) {
    Fleet fleet = Fleet::Build(fleet_options);
    CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
    CeeReportService service = MakeService(fleet);
    ControlPlaneOptions options;
    options.probation.enabled = true;
    options.probation.window = SimTime::Days(1);
    options.probation.clean_windows_to_reinstate = clean_windows;
    options.chaos.probation_suppress = suppress;
    QuarantineControlPlane plane(options, policy, Rng(71), Rng(72));
    for (int day = 1; day <= days; ++day) {
      const SimTime now = SimTime::Days(day);
      fleet.SetAges(now);
      if (day <= 2) {
        for (int r = 0; r < 3; ++r) {
          plane.Report(ScreenFailAt(now, fleet, accused), service);
        }
      }
      plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, nullptr);
    }
    return plane;
  };

  // Arm A: no suppression, reinstatement far away. Once the defect onsets, the shadow screen
  // extracts a confession and escalates to permanent retirement.
  {
    QuarantineControlPlane plane =
        run(/*suppress=*/0.0, /*clean_windows=*/10000, /*days=*/onset_days + 40);
    ASSERT_EQ(plane.manager().stats().probation_entries, 1u)
        << "pre-onset batteries cannot confess, so recidivism must convict weakly";
    EXPECT_EQ(plane.manager().stats().probation_escalations, 1u)
        << "the shadow screen must catch the defective core after onset";
    EXPECT_EQ(plane.manager().stats().true_positive_retirements, 1u);
    EXPECT_EQ(plane.manager().stats().reinstatements, 0u);
    EXPECT_EQ(plane.probation_count(), 0u);
    EXPECT_EQ(plane.manager().stats().missed_confessions, 1u)
        << "only the day-1 release misses; the escalation does not";
  }

  // Arm B: every shadow confession is swallowed in flight. The same core sails through its
  // clean-looking windows and is wrongly reinstated — counted as a missed confession.
  {
    QuarantineControlPlane plane =
        run(/*suppress=*/1.0, /*clean_windows=*/onset_days + 10, /*days=*/onset_days + 40);
    ASSERT_EQ(plane.manager().stats().probation_entries, 1u);
    EXPECT_EQ(plane.manager().stats().probation_escalations, 0u);
    EXPECT_EQ(plane.manager().stats().reinstatements, 1u);
    EXPECT_GE(plane.manager().stats().missed_confessions, 2u)
        << "wrongly reinstating a defective core must be visible in ground truth";
    EXPECT_GT(plane.stats().chaos.probation_signals_suppressed, 0u)
        << "suppression must have actually swallowed a confession";
    EXPECT_EQ(plane.manager().stats().retirements, 0u);
  }
}

// --- Resilience: chaos + retries + guardrail ------------------------------------------------

struct PipelineOutcome {
  QuarantineStats quarantine;
  ControlPlaneStats plane;
  SchedulerStats scheduler;
  size_t core_count = 0;
  int64_t duration_seconds = 0;
};

// Drives a perfectly informed accusation stream (every truly mercurial core accused daily)
// through the control plane for `days` simulated days. Chaos decides what survives the wire;
// the options under test decide how the pipeline copes.
PipelineOutcome RunChaosPipeline(const ControlPlaneOptions& options, uint64_t seed,
                                 int days = 60) {
  FleetOptions fleet_options;
  fleet_options.machine_count = 12;
  fleet_options.mercurial_rate_multiplier = 400.0;
  Fleet fleet = Fleet::Build(fleet_options);
  CoreScheduler scheduler(fleet.core_count(), SchedulerCosts{});
  CeeReportService service = MakeService(fleet);
  QuarantinePolicy policy;
  policy.confession.stress.iterations_per_unit = 64;
  QuarantineControlPlane plane(options, policy, Rng(seed), Rng(seed ^ 0x5eed));

  for (int day = 1; day <= days; ++day) {
    const SimTime now = SimTime::Days(day);
    fleet.SetAges(now);
    for (uint64_t core : fleet.mercurial_cores()) {
      if (scheduler.state(core) != CoreState::kActive) {
        continue;
      }
      plane.Report(ScreenFailAt(now, fleet, core), service);
    }
    plane.Tick(now, SimTime::Days(1), fleet, scheduler, service, nullptr);
  }

  PipelineOutcome outcome;
  outcome.quarantine = plane.manager().stats();
  outcome.plane = plane.stats();
  outcome.scheduler = scheduler.stats();
  outcome.core_count = fleet.core_count();
  outcome.duration_seconds = SimTime::Days(days).seconds();
  return outcome;
}

ChaosOptions HarshChaos() {
  ChaosOptions chaos;
  chaos.drop_report = 0.4;
  chaos.abort_interrogation = 0.5;
  return chaos;
}

TEST(ControlPlaneTest, ChaosRetriesRecoverAtLeastNoRetryBaseline) {
  ControlPlaneOptions baseline;
  baseline.chaos = HarshChaos();

  ControlPlaneOptions resilient;
  resilient.chaos = HarshChaos();
  resilient.max_retries = 4;
  resilient.retry_backoff = SimTime::Days(1);
  resilient.quarantine_budget_fraction = 0.25;

  const PipelineOutcome base = RunChaosPipeline(baseline, 2021);
  const PipelineOutcome hardened = RunChaosPipeline(resilient, 2021);

  EXPECT_GT(base.plane.chaos.reports_dropped, 0u) << "chaos must actually bite";
  EXPECT_GT(hardened.plane.chaos.interrogations_aborted, 0u);
  EXPECT_GT(hardened.plane.retries_scheduled, 0u);

  // Retry/backoff must recover at least the no-retry baseline's true positives, and convert
  // evasive releases into confessions rather than waiting out recidivism.
  EXPECT_GE(hardened.quarantine.true_positive_retirements,
            base.quarantine.true_positive_retirements);
  EXPECT_GT(hardened.quarantine.confessions, base.quarantine.confessions);

  // The guardrail keeps reversible stranding under budget: never more than the budgeted core
  // count pending isolation, so the integral is bounded by budget * cores * duration.
  const double budget_cores =
      std::floor(resilient.quarantine_budget_fraction * static_cast<double>(hardened.core_count));
  EXPECT_LE(hardened.plane.peak_pending_isolation, static_cast<uint64_t>(budget_cores));
  EXPECT_LE(hardened.plane.pending_isolation_core_seconds,
            budget_cores * static_cast<double>(hardened.duration_seconds));
}

TEST(ControlPlaneTest, ChaosPipelineIsDeterministicUnderFixedSeed) {
  ControlPlaneOptions options;
  options.chaos = HarshChaos();
  options.chaos.delay_report = 0.2;
  options.chaos.machine_restart_per_day = 0.01;
  options.max_retries = 3;
  options.retry_backoff = SimTime::Days(1);
  options.quarantine_budget_fraction = 0.25;
  options.drain_latency = SimTime::Hours(6);
  options.drain_timeout = SimTime::Days(2);

  const PipelineOutcome a = RunChaosPipeline(options, 99, /*days=*/45);
  const PipelineOutcome b = RunChaosPipeline(options, 99, /*days=*/45);
  ExpectQuarantineStatsEqual(a.quarantine, b.quarantine);
  ExpectSchedulerStatsEqual(a.scheduler, b.scheduler);
  EXPECT_EQ(a.plane.suspects_admitted, b.plane.suspects_admitted);
  EXPECT_EQ(a.plane.suspects_shed, b.plane.suspects_shed);
  EXPECT_EQ(a.plane.retries_scheduled, b.plane.retries_scheduled);
  EXPECT_EQ(a.plane.drain_escalations, b.plane.drain_escalations);
  EXPECT_EQ(a.plane.guardrail_releases, b.plane.guardrail_releases);
  EXPECT_EQ(a.plane.restarts_reset, b.plane.restarts_reset);
  EXPECT_EQ(a.plane.pending_isolation_core_seconds, b.plane.pending_isolation_core_seconds);
  EXPECT_EQ(a.plane.chaos.reports_dropped, b.plane.chaos.reports_dropped);
  EXPECT_EQ(a.plane.chaos.reports_delayed, b.plane.chaos.reports_delayed);
  EXPECT_EQ(a.plane.chaos.interrogations_aborted, b.plane.chaos.interrogations_aborted);
  EXPECT_EQ(a.plane.chaos.machine_restarts, b.plane.chaos.machine_restarts);
}

// --- Whole-study integration ----------------------------------------------------------------

StudyOptions ChaosStudyOptions(int threads) {
  StudyOptions options;
  options.seed = 777;
  options.fleet.machine_count = 60;
  options.fleet.mercurial_rate_multiplier = 150.0;
  options.workload.payload_bytes = 256;
  options.work_units_per_core_day = 20;
  options.duration = SimTime::Days(90);
  options.screening.offline_period = SimTime::Days(30);
  options.shards = 8;
  options.threads = threads;
  options.control_plane.max_retries = 2;
  options.control_plane.retry_backoff = SimTime::Days(2);
  options.control_plane.quarantine_budget_fraction = 0.2;
  options.control_plane.drain_latency = SimTime::Hours(12);
  options.control_plane.chaos.drop_report = 0.2;
  options.control_plane.chaos.duplicate_report = 0.1;
  options.control_plane.chaos.delay_report = 0.1;
  options.control_plane.chaos.abort_interrogation = 0.3;
  options.control_plane.chaos.machine_restart_per_day = 0.002;
  return options;
}

// The control plane and chaos injector run entirely in the serial phase, so a chaotic study
// must still be thread-count invariant (the sharded engine's core contract).
TEST(ControlPlaneStudyTest, ChaoticStudyIsThreadCountInvariant) {
  FleetStudy study_1(ChaosStudyOptions(1));
  const StudyReport a = study_1.Run();
  FleetStudy study_4(ChaosStudyOptions(4));
  const StudyReport b = study_4.Run();

  ExpectQuarantineStatsEqual(a.quarantine, b.quarantine);
  ExpectSchedulerStatsEqual(a.scheduler, b.scheduler);
  EXPECT_EQ(a.work_units_executed, b.work_units_executed);
  EXPECT_EQ(a.silent_corruptions, b.silent_corruptions);
  EXPECT_EQ(a.screen_failures, b.screen_failures);
  EXPECT_EQ(a.mercurial_retired, b.mercurial_retired);
  EXPECT_EQ(a.control_plane.suspects_admitted, b.control_plane.suspects_admitted);
  EXPECT_EQ(a.control_plane.suspects_shed, b.control_plane.suspects_shed);
  EXPECT_EQ(a.control_plane.retries_scheduled, b.control_plane.retries_scheduled);
  EXPECT_EQ(a.control_plane.guardrail_releases, b.control_plane.guardrail_releases);
  EXPECT_EQ(a.control_plane.restarts_reset, b.control_plane.restarts_reset);
  EXPECT_EQ(a.control_plane.pending_isolation_core_seconds,
            b.control_plane.pending_isolation_core_seconds);
  EXPECT_EQ(a.control_plane.chaos.reports_dropped, b.control_plane.chaos.reports_dropped);
  EXPECT_EQ(a.control_plane.chaos.interrogations_aborted,
            b.control_plane.chaos.interrogations_aborted);
  EXPECT_GT(a.control_plane.chaos.reports_dropped, 0u) << "chaos must be active in this study";
}

TEST(ControlPlaneStudyTest, StudyRejectsInvalidControlPlaneOptions) {
  StudyOptions options;
  options.fleet.machine_count = 4;
  options.duration = SimTime::Days(2);
  options.control_plane.quarantine_budget_fraction = 0.0;
  FleetStudy study(options);
  EXPECT_DEATH(study.Run(), "quarantine_budget_fraction");
}

}  // namespace
}  // namespace mercurial
