// DurabilityManager unit tests: the write-ahead journal + snapshot + recovery engine behind
// the crash-tolerant control plane (src/durability/journal.h), exercised with toy units whose
// durable state is cheap to model exactly, plus study-level regressions for the recovery
// accounting the control plane must reconstruct (pending-at-end books).
//
// The frame-prefix contract under test: recovery trusts exactly the longest valid frame
// prefix. A torn tail (clipped frame) or a corrupt frame (CRC mismatch) ends the prefix and
// is classified and counted; the state that comes back is always the state at some durable
// tick, never a blend, never garbage.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/wire.h"
#include "src/core/fleet_study.h"
#include "src/durability/journal.h"

namespace mercurial {
namespace {

// Full-state toy unit: a single register. Serialize-and-compare dirtiness means a tick where
// the value does not change writes nothing for this unit.
struct ToyRegister {
  uint64_t value = 0;

  void Save(ByteWriter& w) const { w.PutU64(value); }
  Status Load(ByteReader& r) { return r.GetU64(&value); }
};

// Delta toy unit: an append-only log with a per-tick op journal, the same shape as the
// blast-radius ledger and the trace rings.
struct ToyLog {
  std::vector<uint64_t> entries;
  std::vector<uint64_t> tick_ops;

  void Append(uint64_t v) {
    entries.push_back(v);
    tick_ops.push_back(v);
  }
  bool HasTickOps() const { return !tick_ops.empty(); }
  void DrainTickOps(ByteWriter& w) {
    w.PutU32(static_cast<uint32_t>(tick_ops.size()));
    for (uint64_t v : tick_ops) {
      w.PutU64(v);
    }
    tick_ops.clear();
  }
  Status ApplyTickOps(ByteReader& r) {
    uint32_t count = 0;
    if (Status s = r.GetU32(&count); !s.ok()) {
      return s;
    }
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t v = 0;
      if (Status s = r.GetU64(&v); !s.ok()) {
        return s;
      }
      entries.push_back(v);
    }
    return Status::Ok();
  }
  void Save(ByteWriter& w) const {
    w.PutU32(static_cast<uint32_t>(entries.size()));
    for (uint64_t v : entries) {
      w.PutU64(v);
    }
  }
  Status Load(ByteReader& r) {
    uint32_t count = 0;
    if (Status s = r.GetU32(&count); !s.ok()) {
      return s;
    }
    std::vector<uint64_t> loaded;
    loaded.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t v = 0;
      if (Status s = r.GetU64(&v); !s.ok()) {
        return s;
      }
      loaded.push_back(v);
    }
    entries = std::move(loaded);
    tick_ops.clear();
    return Status::Ok();
  }
};

void RegisterToyUnits(DurabilityManager& manager, ToyRegister& reg, ToyLog& log) {
  manager.RegisterUnit(
      "register", [&reg](ByteWriter& w) { reg.Save(w); },
      [&reg](ByteReader& r) { return reg.Load(r); });
  manager.RegisterDeltaUnit(
      "log", [&log](ByteWriter& w) { log.Save(w); },
      [&log](ByteReader& r) { return log.Load(r); }, [&log]() { return log.HasTickOps(); },
      [&log](ByteWriter& w) { log.DrainTickOps(w); },
      [&log](ByteReader& r) { return log.ApplyTickOps(r); });
}

// The modeled durable state after each tick, for exact-rollback assertions.
struct ToyStateAtTick {
  uint64_t reg = 0;
  std::vector<uint64_t> log;
  size_t journal_size = 0;  // journal byte size right after this tick's EndTick
};

// Runs `ticks` deterministic mutations through a journal, recording the expected durable
// state after each tick. Tick i (1-based) sets the register to 100 + i and appends i to the
// log (two entries on even ticks, so delta payload sizes vary).
std::vector<ToyStateAtTick> DriveTicks(DurabilityManager& manager, ToyRegister& reg,
                                       ToyLog& log, uint64_t ticks) {
  std::vector<ToyStateAtTick> after;
  for (uint64_t i = 1; i <= ticks; ++i) {
    reg.value = 100 + i;
    log.Append(i);
    if (i % 2 == 0) {
      log.Append(1000 + i);
    }
    manager.EndTick(i);
    after.push_back({reg.value, log.entries, manager.size()});
  }
  return after;
}

TEST(DurabilityTest, StartWritesHeaderManifestAndInitialSnapshot) {
  ToyRegister reg;
  ToyLog log;
  DurabilityManager manager(DurabilityManager::Options{});
  RegisterToyUnits(manager, reg, log);
  const std::vector<uint8_t> manifest = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(manager.Start(0, manifest).ok());

  EXPECT_TRUE(manager.started());
  EXPECT_EQ(manager.stats().frames_written, 3u);  // header + manifest + initial snapshot
  EXPECT_EQ(manager.stats().snapshots_written, 1u);
  EXPECT_EQ(manager.stats().tick_frames_written, 0u);
  EXPECT_EQ(manager.stats().bytes_written, manager.size());
  EXPECT_GT(manager.size(), manifest.size());
  // The initial snapshot closes the immutable prefix: the mutable (chaos-exposed) tail is
  // empty until the first tick frame lands.
  EXPECT_EQ(manager.mutable_tail_start(), manager.size());
}

TEST(DurabilityTest, ExactRecoveryRestoresTheLatestDurableTick) {
  ToyRegister reg;
  ToyLog log;
  DurabilityManager manager(DurabilityManager::Options{});
  RegisterToyUnits(manager, reg, log);
  ASSERT_TRUE(manager.Start(0, {}).ok());
  const std::vector<ToyStateAtTick> after = DriveTicks(manager, reg, log, 5);

  // Mutations after the last EndTick never reached the journal; a crash forgets them.
  reg.value = 999999;
  log.Append(999999);

  StatusOr<DurabilityManager::RecoveryResult> recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->exact);
  EXPECT_EQ(recovered->durable_tick, 5u);
  EXPECT_EQ(recovered->frames_replayed, 5u);
  EXPECT_EQ(recovered->frames_truncated, 0u);
  EXPECT_EQ(reg.value, after[4].reg);
  EXPECT_EQ(log.entries, after[4].log);
  EXPECT_TRUE(log.tick_ops.empty()) << "recovery must not leave replayed ops pending";
  EXPECT_EQ(manager.stats().recoveries, 1u);
  EXPECT_EQ(manager.stats().exact_recoveries, 1u);
  EXPECT_EQ(manager.stats().torn_tail_truncations, 0u);
  EXPECT_EQ(manager.stats().corrupt_frames_rejected, 0u);

  // The journal keeps working after recovery: the next tick appends past the durable prefix.
  reg.value = 777;
  manager.EndTick(6);
  StatusOr<DurabilityManager::RecoveryResult> again = manager.Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->exact);
  EXPECT_EQ(again->durable_tick, 6u);
  EXPECT_EQ(reg.value, 777u);
}

TEST(DurabilityTest, SnapshotCadenceBoundsTheReplayTail) {
  ToyRegister reg;
  ToyLog log;
  DurabilityManager::Options options;
  options.snapshot_every = 4;
  DurabilityManager manager(options);
  RegisterToyUnits(manager, reg, log);
  ASSERT_TRUE(manager.Start(0, {}).ok());
  DriveTicks(manager, reg, log, 16);

  // Ticks 4, 8, 12, 16 each replaced their due tick frame with a full snapshot.
  EXPECT_EQ(manager.stats().snapshots_written, 5u);  // initial + 4 due
  EXPECT_EQ(manager.stats().tick_frames_written, 16u);
  EXPECT_EQ(manager.tick_frames_since_snapshot(), 0u);
  EXPECT_EQ(manager.mutable_tail_start(), manager.size());

  // Cadence keeps the replay bounded: recovery after a full cadence replays nothing.
  StatusOr<DurabilityManager::RecoveryResult> recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->exact);
  EXPECT_EQ(recovered->frames_replayed, 0u);
  EXPECT_EQ(recovered->snapshot_tick, 16u);
}

TEST(DurabilityTest, TornTailRecoversThePrefixAndCountsTheLoss) {
  ToyRegister reg;
  ToyLog log;
  DurabilityManager manager(DurabilityManager::Options{});  // snapshot_every=64: no mid snapshots
  RegisterToyUnits(manager, reg, log);
  ASSERT_TRUE(manager.Start(0, {}).ok());
  const std::vector<ToyStateAtTick> after = DriveTicks(manager, reg, log, 5);

  // Tear into the middle of tick 4's frame: ticks 4 and 5 fall past the durable horizon.
  const size_t tear = manager.size() - (after[2].journal_size + 5);
  manager.TearTail(tear);

  StatusOr<DurabilityManager::RecoveryResult> recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->exact);
  EXPECT_EQ(recovered->durable_tick, 3u);
  EXPECT_EQ(recovered->frames_replayed, 3u);
  EXPECT_EQ(recovered->frames_truncated, 2u);
  EXPECT_EQ(manager.stats().torn_tail_truncations, 1u);
  EXPECT_EQ(manager.stats().prefix_recoveries, 1u);
  EXPECT_EQ(reg.value, after[2].reg);
  EXPECT_EQ(log.entries, after[2].log);
  // The clipped frame is untrusted: the journal truncates to the durable prefix exactly.
  EXPECT_EQ(manager.size(), after[2].journal_size);

  // The write cursor continues from the durable prefix; conservation stays closed.
  reg.value = 4242;
  manager.EndTick(6);
  StatusOr<DurabilityManager::RecoveryResult> again = manager.Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->exact);
  EXPECT_EQ(again->frames_replayed, 4u);  // ticks 1..3 + tick 6
  EXPECT_EQ(reg.value, 4242u);
}

TEST(DurabilityTest, FlippedBitIsRejectedNeverTrusted) {
  ToyRegister reg;
  ToyLog log;
  DurabilityManager manager(DurabilityManager::Options{});
  RegisterToyUnits(manager, reg, log);
  ASSERT_TRUE(manager.Start(0, {}).ok());
  const std::vector<ToyStateAtTick> after = DriveTicks(manager, reg, log, 5);

  // Flip one bit inside tick 4's frame (the tick stamp, byte 6 of the frame): the stored CRC
  // no longer matches, so the scan must reject the frame and everything after it.
  manager.FlipBit(after[2].journal_size + 6, 3);

  StatusOr<DurabilityManager::RecoveryResult> recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->exact);
  EXPECT_EQ(recovered->durable_tick, 3u);
  EXPECT_EQ(recovered->frames_replayed, 3u);
  EXPECT_EQ(recovered->frames_truncated, 2u);
  EXPECT_EQ(manager.stats().corrupt_frames_rejected, 1u);
  EXPECT_EQ(manager.stats().torn_tail_truncations, 0u);
  EXPECT_EQ(reg.value, after[2].reg);
  EXPECT_EQ(log.entries, after[2].log);
  EXPECT_EQ(manager.size(), after[2].journal_size);
}

TEST(DurabilityTest, FreshManagerRecoversAJournalImageAndItsManifest) {
  // The CLI `recover` path: the journal bytes are all that survives; a fresh manager with the
  // same unit registration order restores state and the stored manifest from them.
  std::vector<uint8_t> image;
  std::vector<ToyStateAtTick> after;
  const std::vector<uint8_t> manifest = {'a', 'r', 'g', 'v'};
  {
    ToyRegister reg;
    ToyLog log;
    DurabilityManager writer(DurabilityManager::Options{});
    RegisterToyUnits(writer, reg, log);
    ASSERT_TRUE(writer.Start(0, manifest).ok());
    after = DriveTicks(writer, reg, log, 7);
    image = writer.buffer();
  }

  ToyRegister reg;
  ToyLog log;
  DurabilityManager reader(DurabilityManager::Options{});
  RegisterToyUnits(reader, reg, log);
  reader.ReplaceBuffer(image);
  StatusOr<DurabilityManager::RecoveryResult> recovered = reader.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->exact);
  EXPECT_EQ(recovered->durable_tick, 7u);
  EXPECT_EQ(reg.value, after[6].reg);
  EXPECT_EQ(log.entries, after[6].log);
  EXPECT_EQ(reader.recovered_manifest(), manifest);
  EXPECT_TRUE(reader.started()) << "a recovered manager can keep journaling";
}

// --- Study-level recovery accounting regressions -----------------------------------------------

// A compact study with the whole controller armed: chaos on the report pipeline, quorum +
// probation (so both books carry entries at study end), and auditing (so the repair
// orchestrator and ledger are part of the journaled state).
StudyOptions RecoveryStudyOptions() {
  StudyOptions options;
  options.seed = 20210531;
  options.fleet.machine_count = 100;
  options.fleet.mercurial_rate_multiplier = 800.0;
  options.workload.payload_bytes = 256;
  options.work_units_per_core_day = 20;
  options.duration = SimTime::Days(80);
  options.screening.offline_period = SimTime::Days(25);
  options.shards = 8;
  options.threads = 2;
  options.control_plane.max_pending = 64;
  options.control_plane.max_retries = 3;
  // Slow retries + frequent aborts keep the interrogation pipeline busy enough that books
  // are open when the study ends (the regression below is about end-of-study books).
  options.control_plane.retry_backoff = SimTime::Days(6);
  options.control_plane.drain_latency = SimTime::Hours(12);
  options.control_plane.drain_timeout = SimTime::Days(4);
  options.control_plane.chaos.abort_interrogation = 0.50;
  options.control_plane.chaos.probation_suppress = 0.80;
  options.control_plane.chaos.machine_restart_per_day = 0.20;
  options.quarantine.recidivism_retire_after = 2;
  options.control_plane.quorum.enabled = true;
  options.control_plane.quorum.witnesses = 3;
  options.control_plane.quorum.witness_error_rate = 0.30;
  options.control_plane.probation.enabled = true;
  // Long probation (4 x 15-day clean windows) so convictions from the back half of the 80-day
  // study are still on the books at the end — the pending-at-end regression needs open books.
  options.control_plane.probation.window = SimTime::Days(15);
  options.control_plane.probation.clean_windows_to_reinstate = 4;
  options.control_plane.probation.weak_after_attempts = 1;
  options.audit.enabled = true;
  options.audit.repair_budget_per_tick = 256;
  options.trace.enabled = true;
  return options;
}

// Satellite regression: the pending-at-end books (suspects still in the pipeline, probation
// records still open) are reconstructed exactly across clean controller crashes — the
// recovered controller finishes with the same open books as one that never died.
TEST(DurabilityTest, PendingAtEndBooksSurviveControllerCrashes) {
  StudyOptions uncrashed = RecoveryStudyOptions();
  FleetStudy reference_study(uncrashed);
  const StudyReport reference = reference_study.Run();

  StudyOptions crashed = RecoveryStudyOptions();
  crashed.durability.enabled = true;
  crashed.control_plane.chaos.controller_crash_every_ticks = 1;  // die after every tick
  FleetStudy crashed_study(crashed);
  const StudyReport report = crashed_study.Run();

  ASSERT_GT(report.durability.controller_crashes, 0u);
  EXPECT_EQ(report.durability.recoveries, report.durability.controller_crashes);
  EXPECT_EQ(report.durability.prefix_recoveries, 0u) << "clean crashes recover exactly";
  EXPECT_EQ(report.durability.frames_truncated, 0u);

  ASSERT_GT(reference.control_plane.pending_at_end +
                reference.control_plane.probation_pending_at_end,
            0u)
      << "harness left no open books; the regression is vacuous";
  EXPECT_EQ(report.control_plane.pending_at_end, reference.control_plane.pending_at_end);
  EXPECT_EQ(report.control_plane.probation_pending_at_end,
            reference.control_plane.probation_pending_at_end);
  EXPECT_EQ(report.quarantine.probation_entries, reference.quarantine.probation_entries);
  EXPECT_EQ(report.quarantine.reinstatements, reference.quarantine.reinstatements);
}

// Torn tails and bit flips force prefix recoveries; every loss and every reconciliation
// action must be accounted, and the run must complete with conservation intact (the study
// CHECKs frames_replayed + frames_truncated == frames covered at finalization).
TEST(DurabilityTest, TornTailRecoveryAccountsEveryLossLoudly) {
  StudyOptions options = RecoveryStudyOptions();
  options.durability.enabled = true;
  options.durability.snapshot_every = 8;
  options.control_plane.chaos.controller_crash_every_ticks = 3;
  options.control_plane.chaos.journal_torn_tail = 0.6;
  options.control_plane.chaos.journal_bit_flip = 0.3;
  FleetStudy study(options);
  const StudyReport report = study.Run();

  ASSERT_GT(report.durability.controller_crashes, 0u);
  EXPECT_EQ(report.durability.recoveries, report.durability.controller_crashes);
  EXPECT_EQ(report.durability.exact_recoveries + report.durability.prefix_recoveries,
            report.durability.recoveries);
  EXPECT_GT(report.durability.prefix_recoveries, 0u)
      << "no torn tail ever landed; the accounting path is untested";
  EXPECT_GT(report.durability.frames_truncated, 0u);
  EXPECT_GT(report.durability.torn_tail_truncations + report.durability.corrupt_frames_rejected,
            0u);
  // Reaching this line at all proves the strong form: FleetStudy::Finalize CHECK-fails unless
  // frames_replayed + frames_truncated exactly covers the frames at risk across every
  // recovery. The books the rolled-back controller kept must stay within what it admitted.
  EXPECT_LE(report.control_plane.pending_at_end, report.control_plane.suspects_admitted);
}

}  // namespace
}  // namespace mercurial
