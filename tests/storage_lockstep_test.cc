// Tests for src/mitigate/scrub_store.h (replicated blobs + scrubbing, §3) and
// src/sim/lockstep.h (lockstep core pairs, §6).

#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mitigate/scrub_store.h"
#include "src/sim/lockstep.h"

namespace mercurial {
namespace {

DefectSpec CopyBitFlip(double rate) {
  DefectSpec spec;
  spec.unit = ExecUnit::kCopy;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

struct Servers {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit Servers(int n, int defective = -1, double rate = 0.01) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(600 + i)));
      if (i == defective) {
        owned.back()->AddDefect(CopyBitFlip(rate));
      }
      ptrs.push_back(owned.back().get());
    }
  }
};

std::vector<uint8_t> Payload(Rng& rng, size_t n = 256) {
  std::vector<uint8_t> data(n);
  rng.FillBytes(data.data(), n);
  return data;
}

// --- ReplicatedBlobStore ------------------------------------------------------------------------

TEST(ScrubStoreTest, HealthyRoundTrip) {
  Servers servers(3);
  ReplicatedBlobStore store(servers.ptrs);
  Rng rng(1);
  const auto data = Payload(rng);
  store.Write(1, data);
  const auto read = store.Read(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(store.stats().read_failovers, 0u);
  EXPECT_EQ(store.Scrub(), 0u);
}

TEST(ScrubStoreTest, ReadMissing) {
  Servers servers(2);
  ReplicatedBlobStore store(servers.ptrs);
  EXPECT_EQ(store.Read(9).status().code(), StatusCode::kNotFound);
}

TEST(ScrubStoreTest, ReadFailsOverPastCorruptReplica) {
  // Replica 0's server always corrupts copies; replicas 1 and 2 are clean.
  Servers servers(3, /*defective=*/0, /*rate=*/1.0);
  ReplicatedBlobStore store(servers.ptrs);
  Rng rng(2);
  const auto data = Payload(rng);
  store.Write(1, data);
  const auto read = store.Read(1);
  ASSERT_TRUE(read.ok()) << "a healthy replica must serve the read";
  EXPECT_EQ(*read, data);
  EXPECT_GT(store.stats().read_failovers, 0u);
}

TEST(ScrubStoreTest, ScrubFindsAndRepairsLatentCorruption) {
  Servers servers(3, /*defective=*/1, /*rate=*/0.05);
  ReplicatedBlobStore store(servers.ptrs);
  Rng rng(3);
  for (uint64_t key = 0; key < 50; ++key) {
    store.Write(key, Payload(rng));
  }
  const uint64_t repairs = store.Scrub();
  EXPECT_GT(repairs, 0u) << "latent write-path corruption must exist at this rate";
  EXPECT_EQ(store.stats().scrub_corruptions_found, repairs);
  // Repairs of the defective server's replica flow through its own corrupting core, so the
  // at-rest state need not converge to fully clean — but scrubbing keeps every blob
  // READABLE: at least one good replica always exists for the healthy servers to serve.
  for (int round = 0; round < 5; ++round) {
    store.Scrub();
  }
  EXPECT_EQ(store.stats().scrub_unrepairable, 0u);
  for (uint64_t key = 0; key < 50; ++key) {
    EXPECT_TRUE(store.Read(key).ok()) << "key " << key;
  }
}

TEST(ScrubStoreTest, ScrubPreventsReadTimeDataLoss) {
  // With every server mildly defective, unscrubbed blobs eventually rot on all replicas; a
  // scrub between write and read keeps reads serviceable.
  Rng rng(4);
  int loss_without_scrub = 0;
  int loss_with_scrub = 0;
  for (bool scrub : {false, true}) {
    Servers servers(2);
    servers.owned[0]->AddDefect(CopyBitFlip(0.02));
    servers.owned[1]->AddDefect(CopyBitFlip(0.02));
    ReplicatedBlobStore store(servers.ptrs);
    for (uint64_t key = 0; key < 80; ++key) {
      store.Write(key, Payload(rng));
    }
    if (scrub) {
      for (int pass = 0; pass < 4; ++pass) {
        store.Scrub();
      }
    }
    int losses = 0;
    for (uint64_t key = 0; key < 80; ++key) {
      losses += store.Read(key).ok() ? 0 : 1;
    }
    (scrub ? loss_with_scrub : loss_without_scrub) = losses;
  }
  EXPECT_LE(loss_with_scrub, loss_without_scrub)
      << "scrubbing must not increase read-time data loss";
}

TEST(ScrubStoreTest, AllReplicasCorruptIsUnrepairable) {
  Servers servers(2, /*defective=*/-1);
  servers.owned[0]->AddDefect(CopyBitFlip(1.0));
  servers.owned[1]->AddDefect(CopyBitFlip(1.0));
  ReplicatedBlobStore store(servers.ptrs);
  Rng rng(5);
  store.Write(1, Payload(rng));
  store.Scrub();
  EXPECT_EQ(store.stats().scrub_unrepairable, 1u);
  EXPECT_EQ(store.Read(1).status().code(), StatusCode::kDataLoss);
}

// --- LockstepPair -------------------------------------------------------------------------------

TEST(LockstepTest, HealthyPairAgreesAlways) {
  SimCore primary(1, Rng(10));
  SimCore shadow(2, Rng(11));
  LockstepPair pair(&primary, &shadow);
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.NextU64();
    const uint64_t b = rng.NextU64();
    EXPECT_EQ(pair.Alu(AluOp::kAdd, a, b), a + b);
    EXPECT_EQ(pair.Mul(a, b), a * b);
    EXPECT_EQ(pair.Load(a), a);
    EXPECT_EQ(pair.Store(b), b);
  }
  EXPECT_EQ(pair.stats().divergences, 0u);
  EXPECT_FALSE(pair.TakeDivergence());
  EXPECT_EQ(pair.stats().ops, 2000u);
}

TEST(LockstepTest, DefectivePrimaryDetectedPerOp) {
  SimCore primary(1, Rng(13));
  DefectSpec spec;
  spec.unit = ExecUnit::kIntMul;
  spec.effect = DefectEffect::kRandomWrong;
  spec.fvt.base_rate = 1.0;
  primary.AddDefect(spec);
  SimCore shadow(2, Rng(14));
  LockstepPair pair(&primary, &shadow);
  pair.Mul(3, 4);
  EXPECT_EQ(pair.stats().divergences, 1u);
  EXPECT_TRUE(pair.TakeDivergence()) << "the MCE line must be raised";
  EXPECT_FALSE(pair.TakeDivergence()) << "...and consumed";
}

TEST(LockstepTest, DetectionIsImmediateNotEndOfGranule) {
  // Unlike software DMR (which compares digests at granule end), lockstep flags the exact op.
  SimCore primary(1, Rng(15));
  DefectSpec spec;
  spec.unit = ExecUnit::kIntAlu;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = 0.05;
  primary.AddDefect(spec);
  SimCore shadow(2, Rng(16));
  LockstepPair pair(&primary, &shadow);
  Rng rng(17);
  int detected_at_op = -1;
  for (int i = 0; i < 2000; ++i) {
    pair.Alu(AluOp::kXor, rng.NextU64(), rng.NextU64());
    if (pair.TakeDivergence()) {
      detected_at_op = i;
      break;
    }
  }
  ASSERT_GE(detected_at_op, 0) << "a 5% defect must fire within 2000 ops";
  EXPECT_EQ(pair.stats().divergences, 1u);
}

TEST(LockstepTest, SilentCorruptionImpossible) {
  // The lockstep guarantee: a corrupted result is never returned without the divergence flag.
  SimCore primary(1, Rng(18));
  DefectSpec spec;
  spec.unit = ExecUnit::kIntAlu;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = 0.1;
  primary.AddDefect(spec);
  SimCore shadow(2, Rng(19));
  LockstepPair pair(&primary, &shadow);
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.NextU64();
    const uint64_t b = rng.NextU64();
    const uint64_t got = pair.Alu(AluOp::kAdd, a, b);
    const bool diverged = pair.TakeDivergence();
    if (got != a + b) {
      EXPECT_TRUE(diverged) << "wrong result escaped without raising the MCE line";
    }
  }
}

}  // namespace
}  // namespace mercurial
