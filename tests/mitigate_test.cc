// Tests for src/mitigate: redundancy, checkpointing, self-checking libraries, end-to-end
// storage, replicated log, ABFT, checked algorithms.

#include <algorithm>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mitigate/abft.h"
#include "src/mitigate/checkpoint.h"
#include "src/mitigate/e2e_store.h"
#include "src/mitigate/redundancy.h"
#include "src/mitigate/replicated_log.h"
#include "src/mitigate/selfcheck.h"
#include "src/substrate/checksum.h"
#include "src/substrate/lz.h"
#include "src/workload/core_routines.h"

namespace mercurial {
namespace {

DefectSpec AlwaysFire(ExecUnit unit, DefectEffect effect, double rate = 1.0) {
  DefectSpec spec;
  spec.unit = unit;
  spec.effect = effect;
  spec.fvt.base_rate = rate;
  spec.machine_check_fraction = 0.0;
  return spec;
}

// A computation whose digest depends on correct ALU/MUL behavior.
Computation MixComputation(uint64_t seed) {
  return [seed](SimCore& core) {
    uint64_t x = seed;
    for (int i = 0; i < 32; ++i) {
      x = core.Mul(x | 1, 0x9e3779b97f4a7c15ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 29));
    }
    return x;
  };
}

struct CorePool {
  std::vector<std::unique_ptr<SimCore>> owned;
  std::vector<SimCore*> ptrs;

  explicit CorePool(int n, int defective_index = -1, double rate = 1.0) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<SimCore>(i, Rng(1000 + i)));
      if (i == defective_index) {
        owned.back()->AddDefect(AlwaysFire(ExecUnit::kIntMul, DefectEffect::kRandomWrong, rate));
      }
      ptrs.push_back(owned.back().get());
    }
  }
};

// --- Redundancy -------------------------------------------------------------------------------

TEST(RedundancyTest, SimplexOnHealthyCore) {
  CorePool pool(1);
  RedundantExecutor executor(pool.ptrs);
  const uint64_t a = executor.RunSimplex(MixComputation(7));
  const uint64_t b = executor.RunSimplex(MixComputation(7));
  EXPECT_EQ(a, b);
  EXPECT_EQ(executor.stats().executions, 2u);
}

TEST(RedundancyTest, DmrAgreesOnHealthyCores) {
  CorePool pool(2);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunDmr(MixComputation(9));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(executor.stats().mismatches, 0u);
  EXPECT_EQ(executor.stats().executions, 2u);
}

TEST(RedundancyTest, DmrDetectsDefectiveCoreAndRetries) {
  // Core 0 always corrupts multiplies; cores 1..3 are healthy. The first DMR pair (0,1)
  // disagrees; the retry pair (2,3) agrees.
  CorePool pool(4, /*defective_index=*/0);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunDmr(MixComputation(11));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, MixComputation(11)(*pool.ptrs[1]) /* healthy digest */);
  EXPECT_EQ(executor.stats().mismatches, 1u);
  EXPECT_EQ(executor.stats().retries, 1u);
  EXPECT_EQ(executor.stats().executions, 4u);
}

TEST(RedundancyTest, DmrExhaustsRetriesWhenEveryPairHasTheDefectiveCore) {
  // Pool of exactly two cores, one defective: every round re-picks the same bad pair.
  CorePool pool(2, /*defective_index=*/0);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunDmr(MixComputation(13), /*max_retries=*/2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(executor.stats().unresolved, 1u);
}

TEST(RedundancyTest, TmrOutvotesSingleDefectiveCore) {
  CorePool pool(3, /*defective_index=*/1);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunTmr(MixComputation(15));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, MixComputation(15)(*pool.ptrs[0]));
  EXPECT_EQ(executor.stats().vote_corrections, 1u);
  EXPECT_EQ(executor.stats().executions, 3u);
}

TEST(RedundancyTest, TmrCleanVoteOnHealthyCores) {
  CorePool pool(3);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunTmr(MixComputation(17));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(executor.stats().vote_corrections, 0u);
  EXPECT_EQ(executor.stats().mismatches, 0u);
}

TEST(RedundancyTest, VotedTmrMatchesPlainTmrWithReliableVoter) {
  CorePool pool(3, /*defective_index=*/1);
  SimCore voter(9, Rng(909));
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunTmrVotedOn(MixComputation(21), voter);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, MixComputation(21)(*pool.ptrs[0]));
  EXPECT_EQ(executor.stats().vote_corrections, 1u);
}

TEST(RedundancyTest, DefectiveVoterLoadCorruptsAgreedDigest) {
  // §7: "this relies on the voting mechanism itself being reliable" — three healthy
  // replicas, but the voter's load path always flips a bit of the winning digest.
  CorePool pool(3);
  SimCore voter(9, Rng(910));
  DefectSpec spec;
  spec.unit = ExecUnit::kLoad;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = 1.0;
  spec.bit_index = 13;
  voter.AddDefect(spec);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunTmrVotedOn(MixComputation(23), voter);
  ASSERT_TRUE(result.ok()) << "the vote completes...";
  EXPECT_EQ(*result, MixComputation(23)(*pool.ptrs[0]) ^ (1ull << 13))
      << "...but the agreed digest was corrupted on egress";
}

TEST(RedundancyTest, DefectiveVoterAluCausesPhantomDisagreement) {
  CorePool pool(3);
  SimCore voter(9, Rng(911));
  DefectSpec spec;
  spec.unit = ExecUnit::kIntAlu;
  spec.effect = DefectEffect::kBitFlip;
  spec.fvt.base_rate = 1.0;
  spec.opcode_mask = 1ull << static_cast<int>(AluOp::kXor);
  voter.AddDefect(spec);
  RedundantExecutor executor(pool.ptrs);
  const auto result = executor.RunTmrVotedOn(MixComputation(25), voter);
  // All three replicas agreed, but the always-firing corrupted XOR makes every pair look
  // unequal: total availability loss (abort), though never a wrong answer.
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(executor.stats().unresolved, 1u);
  EXPECT_EQ(executor.stats().mismatches, 1u);
}

// --- Checkpointing -----------------------------------------------------------------------------

GranuleFn MixGranule() {
  return [](SimCore& core, uint64_t state) {
    uint64_t x = state;
    for (int i = 0; i < 8; ++i) {
      x = core.Mul(x | 1, 0xbf58476d1ce4e5b9ull);
      x = core.Alu(AluOp::kXor, x, core.Alu(AluOp::kShr, x, 31));
    }
    return x;
  };
}

uint64_t GoldenChain(uint64_t state, int granules) {
  SimCore golden(999, Rng(999));
  const GranuleFn fn = MixGranule();
  for (int g = 0; g < granules; ++g) {
    state = fn(golden, state);
  }
  return state;
}

TEST(CheckpointTest, HealthyChainCommitsEveryGranule) {
  CorePool pool(2);
  CheckpointRunner runner(pool.ptrs);
  const auto result = runner.RunPaired(MixGranule(), 5, /*granules=*/10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, GoldenChain(5, 10));
  EXPECT_EQ(runner.stats().granules_committed, 10u);
  EXPECT_EQ(runner.stats().rollbacks, 0u);
  EXPECT_EQ(runner.stats().granule_executions, 20u);
}

TEST(CheckpointTest, PairedRollsBackPastDefectiveCore) {
  // Pool (bad, good, good, good): pairs rotate, so a corrupted granule is retried on a clean
  // pair and the final state is golden.
  CorePool pool(4, /*defective_index=*/0);
  CheckpointRunner runner(pool.ptrs);
  const auto result = runner.RunPaired(MixGranule(), 5, /*granules=*/8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, GoldenChain(5, 8));
  EXPECT_GT(runner.stats().rollbacks, 0u);
}

TEST(CheckpointTest, CheckerDrivenRun) {
  CorePool pool(3, /*defective_index=*/0);
  CheckpointRunner runner(pool.ptrs);
  // The application checker here knows the golden chain (models a cheap invariant that is
  // precise for this computation).
  uint64_t expected = 5;
  const GranuleFn fn = MixGranule();
  auto checker = [&](uint64_t state_in, uint64_t state_out) {
    SimCore golden(998, Rng(998));
    return fn(golden, state_in) == state_out;
  };
  const auto result = runner.Run(fn, checker, 5, /*granules=*/6);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, GoldenChain(expected, 6));
}

TEST(CheckpointTest, ExhaustedRetriesAbort) {
  CorePool pool(1, /*defective_index=*/0);  // only a defective core available
  CheckpointRunner runner(pool.ptrs);
  auto always_reject = [](uint64_t, uint64_t) { return false; };
  const auto result = runner.Run(MixGranule(), always_reject, 1, /*granules=*/2,
                                 /*max_retries_per_granule=*/2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(runner.stats().failures, 1u);
}

// --- Durable checkpoint framing ---------------------------------------------------------------

TEST(CheckpointFrameTest, RoundTripRecoversStateAndProvenance) {
  const ProvenanceTag tag{/*core_global=*/1234, /*epoch=*/87};
  const std::vector<uint8_t> bytes = SerializeCheckpoint(0xdeadbeefcafef00dull, tag);
  ASSERT_EQ(bytes.size(), kCheckpointFrameBytes);
  ProvenanceTag recovered;
  const auto state = RestoreCheckpoint(bytes, &recovered);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, 0xdeadbeefcafef00dull);
  EXPECT_EQ(recovered.core_global, tag.core_global);
  EXPECT_EQ(recovered.epoch, tag.epoch);
}

TEST(CheckpointFrameTest, EveryBitFlipFailsLoudly) {
  // Restore-from-corrupt must never resume from silently-wrong state: flipping ANY single bit
  // of the frame — magic, provenance, state payload, or the CRC itself — must yield DATA_LOSS.
  const std::vector<uint8_t> golden =
      SerializeCheckpoint(0x0123456789abcdefull, ProvenanceTag{7, 3});
  for (size_t byte = 0; byte < golden.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = golden;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      const auto state = RestoreCheckpoint(mutated);
      ASSERT_FALSE(state.ok()) << "bit " << bit << " of byte " << byte << " flipped silently";
      EXPECT_EQ(state.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(CheckpointFrameTest, EveryTruncationFailsLoudly) {
  const std::vector<uint8_t> golden = SerializeCheckpoint(42, ProvenanceTag{1, 1});
  for (size_t len = 0; len < golden.size(); ++len) {
    const std::vector<uint8_t> truncated(golden.begin(), golden.begin() + len);
    const auto state = RestoreCheckpoint(truncated);
    ASSERT_FALSE(state.ok()) << "truncation to " << len << " bytes restored silently";
    EXPECT_EQ(state.status().code(), StatusCode::kDataLoss);
  }
  // Trailing garbage is a framing violation too.
  std::vector<uint8_t> extended = golden;
  extended.push_back(0);
  EXPECT_EQ(RestoreCheckpoint(extended).status().code(), StatusCode::kDataLoss);
}

// --- Self-checking crypto -----------------------------------------------------------------------

struct AesDefectiveCore {
  SimCore core{1, Rng(21)};
  AesDefectiveCore() {
    DefectSpec spec = AlwaysFire(ExecUnit::kAes, DefectEffect::kRconCorrupt);
    spec.opcode_mask = 1ull << kAesOpRcon;
    core.AddDefect(spec);
  }
};

TEST(SelfCheckTest, SameCoreRoundTripBlindToSelfInvertingAes) {
  AesDefectiveCore bad;
  SelfCheckingAes aes(&bad.core, nullptr, CryptoCheckMode::kSameCoreRoundTrip);
  Rng rng(22);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  std::vector<uint8_t> plaintext(128);
  rng.FillBytes(plaintext.data(), plaintext.size());

  const auto result = aes.Encrypt(key, 1, plaintext);
  ASSERT_TRUE(result.ok()) << "the blind check must pass";
  EXPECT_EQ(aes.stats().corruptions_caught, 0u);
  // And yet the ciphertext is wrong (no healthy core can decrypt it).
  const auto golden = AesCtrTransform(ExpandAesKey(key), 1, plaintext);
  EXPECT_NE(*result, golden);
}

TEST(SelfCheckTest, CrossCoreRoundTripCatchesSelfInvertingAes) {
  AesDefectiveCore bad;
  SimCore checker(2, Rng(23));
  SelfCheckingAes aes(&bad.core, &checker, CryptoCheckMode::kCrossCoreRoundTrip);
  Rng rng(24);
  uint8_t key[16];
  rng.FillBytes(key, 16);
  std::vector<uint8_t> plaintext(128);
  rng.FillBytes(plaintext.data(), plaintext.size());

  const auto result = aes.Encrypt(key, 1, plaintext);
  ASSERT_TRUE(result.ok()) << "retry on the checker core must produce a good ciphertext";
  EXPECT_EQ(aes.stats().corruptions_caught, 1u);
  const auto golden = AesCtrTransform(ExpandAesKey(key), 1, plaintext);
  EXPECT_EQ(*result, golden);
}

TEST(SelfCheckTest, NoCheckModePassesCorruptionThrough) {
  AesDefectiveCore bad;
  SelfCheckingAes aes(&bad.core, nullptr, CryptoCheckMode::kNone);
  uint8_t key[16] = {1};
  const std::vector<uint8_t> plaintext(64, 0x7);
  const auto result = aes.Encrypt(key, 1, plaintext);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(*result, AesCtrTransform(ExpandAesKey(key), 1, plaintext));
}

TEST(SelfCheckTest, HealthyCoreAllModesAgreeWithGolden) {
  SimCore core(1, Rng(25));
  SimCore checker(2, Rng(26));
  uint8_t key[16] = {9};
  const std::vector<uint8_t> plaintext(80, 0x3c);
  const auto golden = AesCtrTransform(ExpandAesKey(key), 5, plaintext);
  for (CryptoCheckMode mode : {CryptoCheckMode::kNone, CryptoCheckMode::kSameCoreRoundTrip,
                               CryptoCheckMode::kCrossCoreRoundTrip}) {
    SelfCheckingAes aes(&core, &checker, mode);
    const auto result = aes.Encrypt(key, 5, plaintext);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, golden);
  }
}

TEST(SelfCheckTest, CompressVerifiedHealthy) {
  SimCore core(1, Rng(27));
  Rng rng(28);
  std::vector<uint8_t> data(512);
  rng.FillBytes(data.data(), data.size());
  SelfCheckStats stats;
  const auto result = CompressVerified(core, data, &stats);
  ASSERT_TRUE(result.ok());
  const auto decompressed = LzDecompress(*result);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, data);
  EXPECT_EQ(stats.corruptions_caught, 0u);
}

TEST(SelfCheckTest, CompressVerifiedCatchesDecodeCorruption) {
  SimCore core(1, Rng(29));
  core.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.05));
  Rng rng(30);
  int caught = 0;
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> data(512);
    rng.FillBytes(data.data(), data.size());
    SelfCheckStats stats;
    (void)CompressVerified(core, data, &stats);
    caught += stats.corruptions_caught > 0 ? 1 : 0;
  }
  EXPECT_GT(caught, 0);
}

// --- End-to-end store ----------------------------------------------------------------------------

TEST(E2eStoreTest, HealthyWriteReadRoundTrip) {
  SimCore server(1, Rng(31));
  ChecksummedStore store(&server, /*verify_on_write=*/true);
  const std::vector<uint8_t> data{1, 2, 3, 4, 5};
  ASSERT_TRUE(store.Write(42, data).ok());
  const auto read = store.Read(42);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(store.stats().write_corruptions_caught, 0u);
}

TEST(E2eStoreTest, ReadMissingKey) {
  SimCore server(1, Rng(32));
  ChecksummedStore store(&server, true);
  EXPECT_EQ(store.Read(1).status().code(), StatusCode::kNotFound);
}

TEST(E2eStoreTest, WritePathCorruptionNeverSilent) {
  // The core property of the end-to-end argument: with a defective copy engine, every
  // corruption is either caught at write time or at read time — reads never return bad bytes.
  SimCore server(1, Rng(33));
  server.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.02));
  ChecksummedStore store(&server, /*verify_on_write=*/true);
  Rng rng(34);
  int data_loss = 0;
  for (uint64_t key = 0; key < 50; ++key) {
    std::vector<uint8_t> data(256);
    rng.FillBytes(data.data(), data.size());
    const Status write_status = store.Write(key, data);
    if (!write_status.ok()) {
      ++data_loss;
      continue;
    }
    const auto read = store.Read(key);
    if (!read.ok()) {
      EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
      ++data_loss;
      continue;
    }
    EXPECT_EQ(*read, data) << "a successful read must return exactly the written bytes";
  }
  EXPECT_GT(store.stats().write_corruptions_caught + store.stats().read_corruptions_caught, 0u);
  (void)data_loss;
}

TEST(E2eStoreTest, DeferredVerificationCatchesAtRead) {
  SimCore server(1, Rng(35));
  server.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.05));
  ChecksummedStore store(&server, /*verify_on_write=*/false);
  Rng rng(36);
  uint64_t read_failures = 0;
  for (uint64_t key = 0; key < 40; ++key) {
    std::vector<uint8_t> data(256);
    rng.FillBytes(data.data(), data.size());
    ASSERT_TRUE(store.Write(key, data).ok()) << "writes are acked blind";
    const auto read = store.Read(key);
    if (!read.ok()) {
      ++read_failures;
    } else {
      EXPECT_EQ(*read, data);
    }
  }
  EXPECT_GT(read_failures, 0u) << "corruption surfaces at read time instead";
  EXPECT_EQ(store.stats().write_corruptions_caught, 0u);
}

TEST(E2eStoreTest, BlobsCarryWriteTimeProvenance) {
  SimCore server(17, Rng(61));
  ChecksummedStore store(&server, /*verify_on_write=*/true);
  ASSERT_TRUE(store.Write(1, {1, 2, 3}).ok());
  server.set_provenance_epoch(5);
  ASSERT_TRUE(store.Write(2, {4, 5, 6}).ok());
  const ProvenanceTag* first = store.Provenance(1);
  const ProvenanceTag* second = store.Provenance(2);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->core_global, 17u);
  EXPECT_EQ(first->epoch, 0u);
  EXPECT_EQ(second->epoch, 5u);
  EXPECT_EQ(store.Provenance(99), nullptr);
}

TEST(E2eStoreTest, ReverifySuspectFindsAndEvictsCorruptBlobsInEpochRange) {
  // Deferred verification + a defective copy engine: corrupt payloads land at rest. The
  // retroactive audit scan must find exactly the corrupt blobs of the suspect (core, epochs),
  // evict them for re-execution, and leave healthy blobs and out-of-range epochs untouched.
  SimCore server(9, Rng(62));
  server.AddDefect(AlwaysFire(ExecUnit::kCopy, DefectEffect::kBitFlip, 0.15));
  ChecksummedStore store(&server, /*verify_on_write=*/false);
  Rng rng(63);
  std::vector<std::vector<uint8_t>> written(60);
  for (uint64_t key = 0; key < 60; ++key) {
    server.set_provenance_epoch(key / 20);  // epochs 0, 1, 2 — 20 keys each
    written[key].resize(128);
    rng.FillBytes(written[key].data(), written[key].size());
    ASSERT_TRUE(store.Write(key, written[key]).ok());
  }
  // A scan keyed to some other core touches nothing.
  EXPECT_TRUE(store.ReverifySuspect(/*core_global=*/1, 0, 2).empty());
  EXPECT_EQ(store.stats().suspect_blobs_scanned, 0u);

  const std::vector<uint64_t> corrupt = store.ReverifySuspect(/*core_global=*/9, 1, 1);
  EXPECT_EQ(store.stats().suspect_scans, 2u);
  EXPECT_EQ(store.stats().suspect_blobs_scanned, 20u) << "only epoch-1 blobs are suspect";
  EXPECT_EQ(store.stats().suspect_corruptions_found, corrupt.size());
  EXPECT_FALSE(corrupt.empty()) << "a 15% bit-flip rate over 20 writes corrupts some blob";
  for (size_t i = 1; i < corrupt.size(); ++i) {
    EXPECT_LT(corrupt[i - 1], corrupt[i]) << "keys are returned in deterministic order";
  }
  for (const uint64_t key : corrupt) {
    EXPECT_GE(key, 20u);
    EXPECT_LT(key, 40u);
    EXPECT_EQ(store.Read(key).status().code(), StatusCode::kNotFound)
        << "corrupt blobs are evicted so re-execution can rewrite them";
  }
  // Every surviving epoch-1 blob passes its golden CRC at rest; a read may still fail loudly
  // (the read path itself runs on the defective copy engine) but never returns wrong bytes.
  for (uint64_t key = 20; key < 40; ++key) {
    if (std::find(corrupt.begin(), corrupt.end(), key) != corrupt.end()) {
      continue;
    }
    const auto read = store.Read(key);
    if (read.ok()) {
      EXPECT_EQ(*read, written[key]);
    } else {
      EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
    }
  }
}

// --- Replicated log -------------------------------------------------------------------------------

TEST(ReplicatedLogTest, HealthyReplicasAgree) {
  CorePool pool(3);
  ReplicatedLog log(pool.ptrs, 7);
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    const auto result = log.Apply(rng.NextU64());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(log.last_divergent_replica(), -1);
  }
  EXPECT_EQ(log.stats().divergences_detected, 0u);
}

TEST(ReplicatedLogTest, DivergentReplicaDetectedAndRepaired) {
  CorePool pool(3, /*defective_index=*/1, /*rate=*/0.05);
  ReplicatedLog log(pool.ptrs, 7);
  Rng rng(38);
  int divergences = 0;
  for (int i = 0; i < 200; ++i) {
    const auto result = log.Apply(rng.NextU64());
    ASSERT_TRUE(result.ok()) << "a single bad replica can never block the quorum";
    if (log.last_divergent_replica() >= 0) {
      EXPECT_EQ(log.last_divergent_replica(), 1) << "the defective replica is the one flagged";
      ++divergences;
    }
  }
  EXPECT_GT(divergences, 0);
  EXPECT_EQ(log.stats().repairs, log.stats().divergences_detected);
}

TEST(ReplicatedLogTest, FiveWayToleratesTwoDivergences) {
  CorePool pool(5, /*defective_index=*/0, /*rate=*/1.0);
  pool.owned[1]->AddDefect(AlwaysFire(ExecUnit::kIntMul, DefectEffect::kRandomWrong, 1.0));
  ReplicatedLog log(pool.ptrs, 3);
  const auto result = log.Apply(123);
  ASSERT_TRUE(result.ok()) << "3 healthy of 5 still form a majority";
  EXPECT_EQ(log.stats().divergences_detected, 2u);
}

TEST(ReplicatedLogTest, NoMajorityAbortsAndReportsEveryReplicaAsSuspect) {
  // Regression: two always-wrong replicas out of three produce three distinct digests — no
  // majority exists. Apply must return ABORTED (never a guessed state), and since there is no
  // trusted reference EVERY replica must be filed as suspect; the concentration stage is what
  // discounts the healthy one later, not the log.
  CorePool pool(3, /*defective_index=*/0, /*rate=*/1.0);
  pool.owned[1]->AddDefect(AlwaysFire(ExecUnit::kIntMul, DefectEffect::kRandomWrong, 1.0));
  ReplicatedLog log(pool.ptrs, 11);
  std::vector<std::pair<size_t, uint64_t>> reported;
  log.set_suspect_reporter(
      [&](size_t replica, uint64_t core_id) { reported.emplace_back(replica, core_id); });
  const auto result = log.Apply(456);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(log.stats().unresolved, 1u);
  ASSERT_EQ(reported.size(), 3u) << "all replicas reported when no majority exists";
  for (size_t i = 0; i < reported.size(); ++i) {
    EXPECT_EQ(reported[i].first, i);
    EXPECT_EQ(reported[i].second, pool.ptrs[i]->id());
  }
  EXPECT_EQ(log.agreed_state(), 11u) << "the agreed state is not advanced without a quorum";
}

TEST(ReplicatedLogTest, MajorityRepairReportsOnlyTheDivergentReplica) {
  CorePool pool(3, /*defective_index=*/2, /*rate=*/1.0);
  ReplicatedLog log(pool.ptrs, 11);
  std::vector<std::pair<size_t, uint64_t>> reported;
  log.set_suspect_reporter(
      [&](size_t replica, uint64_t core_id) { reported.emplace_back(replica, core_id); });
  const auto result = log.Apply(456);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0].first, 2u);
  EXPECT_EQ(reported[0].second, pool.ptrs[2]->id());
}

// --- ABFT / checked algorithms ---------------------------------------------------------------------

Matrix RandomMatrix(Rng& rng, size_t n) {
  Matrix m(n, n);
  for (auto& v : m.data()) {
    v = rng.NextDouble() * 2.0 - 1.0;
  }
  return m;
}

TEST(AbftTest, HealthyMatmulNoDetection) {
  SimCore core(1, Rng(39));
  Rng rng(40);
  const Matrix a = RandomMatrix(rng, 8);
  const Matrix b = RandomMatrix(rng, 8);
  const AbftMatmulResult result = AbftMatmul(core, a, b);
  EXPECT_FALSE(result.corruption_detected);
  EXPECT_LT(result.product.MaxAbsDiff(Multiply(a, b)), 1e-9);
}

TEST(AbftTest, DetectsInjectedCorruption) {
  SimCore core(1, Rng(41));
  DefectSpec spec = AlwaysFire(ExecUnit::kFp, DefectEffect::kBitFlip, 0.005);
  spec.bit_index = 52;  // exponent-adjacent: large perturbation
  core.AddDefect(spec);
  Rng rng(42);
  int detected = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix a = RandomMatrix(rng, 8);
    const Matrix b = RandomMatrix(rng, 8);
    const AbftMatmulResult result = AbftMatmul(core, a, b);
    const bool wrong = result.product.MaxAbsDiff(Multiply(a, b)) > 1e-6;
    if (result.corruption_detected) {
      ++detected;
    } else {
      EXPECT_FALSE(wrong) << "undetected corruption in the returned product";
    }
  }
  EXPECT_GT(detected, 0);
}

TEST(AbftTest, CorrectsSingleCellCorruption) {
  // Inject exactly one wrong cell by hand to exercise the correction path deterministically.
  SimCore core(1, Rng(43));
  Rng rng(44);
  const Matrix a = RandomMatrix(rng, 6);
  const Matrix b = RandomMatrix(rng, 6);
  // Build the augmented product on a healthy core, then corrupt one interior cell by
  // re-running AbftMatmul against a defective core that fires exactly once... simpler: verify
  // via the public API that single-firing defects usually end up corrected.
  DefectSpec spec = AlwaysFire(ExecUnit::kFp, DefectEffect::kBitFlip, 0.0);  // armed manually
  spec.bit_index = 51;
  SimCore bad(2, Rng(45));
  spec.fvt.base_rate = 1.0;
  spec.trigger.mask = 0xff;  // fire on ~1/256 of op signatures: expect ~1-2 firings per matmul
  spec.trigger.value = 0x3d;
  bad.AddDefect(spec);
  int corrected = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Matrix x = RandomMatrix(rng, 6);
    const Matrix y = RandomMatrix(rng, 6);
    const AbftMatmulResult result = AbftMatmul(bad, x, y);
    if (result.corrected) {
      ++corrected;
      EXPECT_LT(result.product.MaxAbsDiff(Multiply(x, y)), 1e-6)
          << "corrected product must match golden";
    }
  }
  EXPECT_GT(corrected, 0) << "single-cell corruptions must sometimes be repaired";
}

TEST(FreivaldsTest, AcceptsCorrectProduct) {
  Rng rng(46);
  const Matrix a = RandomMatrix(rng, 10);
  const Matrix b = RandomMatrix(rng, 10);
  EXPECT_TRUE(FreivaldsCheck(a, b, Multiply(a, b), 10, rng));
}

TEST(FreivaldsTest, RejectsCorruptedProduct) {
  Rng rng(47);
  const Matrix a = RandomMatrix(rng, 10);
  const Matrix b = RandomMatrix(rng, 10);
  Matrix c = Multiply(a, b);
  c.at(3, 7) += 0.5;
  EXPECT_FALSE(FreivaldsCheck(a, b, c, 10, rng));
}

TEST(CheckedSortTest, HealthySort) {
  CorePool pool(2);
  Rng rng(48);
  std::vector<uint64_t> keys(200);
  for (auto& k : keys) {
    k = rng.NextU64();
  }
  CheckedSortStats stats;
  const auto result = CheckedSort(keys, pool.ptrs, 3, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::is_sorted(result->begin(), result->end()));
  EXPECT_EQ(stats.check_failures, 0u);
}

TEST(CheckedSortTest, RetriesOntoHealthyCore) {
  CorePool pool(2);
  pool.owned[0]->AddDefect(AlwaysFire(ExecUnit::kStore, DefectEffect::kBitFlip, 0.01));
  Rng rng(49);
  std::vector<uint64_t> keys(256);
  for (auto& k : keys) {
    k = rng.NextU64();
  }
  std::vector<uint64_t> golden = keys;
  std::sort(golden.begin(), golden.end());
  CheckedSortStats stats;
  const auto result = CheckedSort(keys, pool.ptrs, 3, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, golden);
  // With a 1% store corruption over 256 elements the first attempt almost surely failed.
  EXPECT_GT(stats.check_failures, 0u);
}

TEST(CheckedSortTest, AbortsWhenAllCoresBad) {
  CorePool pool(1, /*defective_index=*/0, /*rate=*/0.05);
  // Defect on the store unit so every attempt corrupts.
  pool.owned[0]->AddDefect(AlwaysFire(ExecUnit::kStore, DefectEffect::kBitFlip, 0.05));
  Rng rng(50);
  std::vector<uint64_t> keys(256);
  for (auto& k : keys) {
    k = rng.NextU64();
  }
  const auto result = CheckedSort(keys, pool.ptrs, 2, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(CheckedLuTest, HealthyFactorization) {
  CorePool pool(2);
  Rng rng(51);
  Matrix a = RandomMatrix(rng, 8);
  for (size_t i = 0; i < 8; ++i) {
    a.at(i, i) += 4.0;
  }
  const auto factors = CheckedLuFactorize(a, pool.ptrs);
  ASSERT_TRUE(factors.ok());
  EXPECT_LT(LuReconstruct(*factors).MaxAbsDiff(PermuteRows(a, factors->pivots)), 1e-9);
}

TEST(CheckedLuTest, RetriesPastDefectiveCore) {
  CorePool pool(2);
  DefectSpec spec = AlwaysFire(ExecUnit::kFp, DefectEffect::kBitFlip, 0.02);
  spec.bit_index = 51;
  pool.owned[0]->AddDefect(spec);
  Rng rng(52);
  int successes = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(rng, 8);
    for (size_t i = 0; i < 8; ++i) {
      a.at(i, i) += 4.0;
    }
    const auto factors = CheckedLuFactorize(a, pool.ptrs, /*max_retries=*/3);
    if (factors.ok()) {
      ++successes;
      EXPECT_LT(LuReconstruct(*factors).MaxAbsDiff(PermuteRows(a, factors->pivots)), 1e-6);
    }
  }
  EXPECT_GT(successes, 7) << "the healthy pool core should rescue nearly every attempt";
}

TEST(CheckedLuTest, CoreLuMatchesSubstrateOnHealthyCore) {
  SimCore core(1, Rng(53));
  Rng rng(54);
  Matrix a = RandomMatrix(rng, 6);
  for (size_t i = 0; i < 6; ++i) {
    a.at(i, i) += 3.0;
  }
  const auto on_core = CoreLuFactorize(core, a);
  const auto golden = LuFactorize(a);
  ASSERT_TRUE(on_core.ok());
  ASSERT_TRUE(golden.ok());
  EXPECT_LT(on_core->lower.MaxAbsDiff(golden->lower), 1e-12);
  EXPECT_LT(on_core->upper.MaxAbsDiff(golden->upper), 1e-12);
  EXPECT_EQ(on_core->pivots, golden->pivots);
}

}  // namespace
}  // namespace mercurial
